"""Tests for varied-size (<h, s>) striping."""

import pytest

from repro.exceptions import LayoutError
from repro.layouts import VariedStripeLayout, check_tiling


def make(h, s, M=2, N=2):
    return VariedStripeLayout(
        hservers=list(range(M)), sservers=list(range(M, M + N)), h=h, s=s
    )


class TestMapping:
    def test_cycle_structure(self):
        layout = make(h=10, s=30)
        assert layout.cycle == 2 * 10 + 2 * 30

    def test_hservers_first_within_cycle(self):
        layout = make(h=10, s=30)
        frags = layout.map_extent(0, 80)
        assert [(f.server, f.length) for f in frags] == [
            (0, 10),
            (1, 10),
            (2, 30),
            (3, 30),
        ]

    def test_second_cycle_offsets(self):
        layout = make(h=10, s=30)
        frags = layout.map_extent(80, 80)
        assert [(f.server, f.offset) for f in frags] == [
            (0, 10),
            (1, 10),
            (2, 30),
            (3, 30),
        ]

    def test_h_zero_places_only_on_sservers(self):
        layout = make(h=0, s=16)
        frags = layout.map_extent(0, 64)
        assert {f.server for f in frags} == {2, 3}
        assert layout.cycle == 32

    def test_s_zero_places_only_on_hservers(self):
        layout = make(h=16, s=0)
        frags = layout.map_extent(0, 64)
        assert {f.server for f in frags} == {0, 1}

    def test_servers_reflects_active_classes(self):
        assert make(h=0, s=16).servers == (2, 3)
        assert make(h=16, s=0).servers == (0, 1)
        assert make(h=8, s=16).servers == (0, 1, 2, 3)

    def test_tiling_invariant_unaligned(self):
        layout = make(h=12, s=28)
        check_tiling(7, 333, layout.map_extent(7, 333))

    def test_mid_stripe_start(self):
        layout = make(h=10, s=30)
        frags = layout.map_extent(5, 10)
        assert [(f.server, f.offset, f.length) for f in frags] == [
            (0, 5, 5),
            (1, 0, 5),
        ]

    def test_asymmetric_class_sizes(self):
        layout = VariedStripeLayout([0, 1, 2], [3], h=4, s=20)
        frags = layout.map_extent(0, 32)
        assert [(f.server, f.length) for f in frags] == [
            (0, 4),
            (1, 4),
            (2, 4),
            (3, 20),
        ]

    def test_zero_length(self):
        assert make(h=10, s=20).map_extent(50, 0) == []


class TestValidation:
    def test_both_zero_rejected(self):
        with pytest.raises(LayoutError):
            make(h=0, s=0)

    def test_negative_stripe_rejected(self):
        with pytest.raises(LayoutError):
            make(h=-4, s=8)

    def test_h_positive_without_hservers_rejected(self):
        with pytest.raises(LayoutError):
            VariedStripeLayout([], [0, 1], h=4, s=8)

    def test_overlapping_classes_rejected(self):
        with pytest.raises(LayoutError):
            VariedStripeLayout([0, 1], [1, 2], h=4, s=8)

    def test_no_hservers_is_fine_with_h_zero(self):
        layout = VariedStripeLayout([], [0, 1], h=0, s=8)
        assert layout.map_extent(0, 16)[0].server == 0

    def test_positive_stripe_for_empty_class_rejected(self):
        with pytest.raises(LayoutError):
            VariedStripeLayout([0, 1], [], h=8, s=16)

    def test_empty_class_with_zero_stripe_allowed(self):
        layout = VariedStripeLayout([0, 1], [], h=8, s=0)
        assert layout.s == 0
        assert {f.server for f in layout.map_extent(0, 32)} == {0, 1}

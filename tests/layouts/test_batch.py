"""Batched request mapping must equal the per-request object path.

Every batch API introduced for the flat replay kernel — layout
``map_extents``/``merged_extent_runs``, :func:`merged_runs_of`,
``LayoutView.map_requests``/``merged_runs``, and the MHA redirector's
batch twins — is checked fragment-for-fragment against the scalar path
it replaces.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec
from repro.core import DRT, DRTEntry, Redirector, StripePair, build_region_layout
from repro.layouts import (
    FixedStripeLayout,
    Region,
    RegionLayout,
    VariedStripeLayout,
)
from repro.layouts.batch import (
    MergedRuns,
    RunsBuilder,
    merge_fragments,
    merged_runs_of,
    runs_from_fragments,
)
from repro.schemes.base import LayoutView
from repro.units import KiB


def fixed():
    return FixedStripeLayout([0, 1, 2], 4 * KiB, obj="f")


def varied():
    return VariedStripeLayout([0, 1], [2, 3], 4 * KiB, 16 * KiB, obj="f")


def region_distinct():
    return RegionLayout(
        [
            Region(0, 64 * KiB, FixedStripeLayout([0, 1], 4 * KiB, obj="r0")),
            Region(64 * KiB, 256 * KiB, VariedStripeLayout([0], [2, 3], 4 * KiB, 16 * KiB, obj="r1")),
            Region(256 * KiB, 320 * KiB, FixedStripeLayout([2, 3], 8 * KiB, obj="r2")),
        ]
    )


def region_shared_obj():
    # both regions stripe into the same object: the batch kernel must
    # refuse (runs could merge across regions) and fall back
    return RegionLayout(
        [
            Region(0, 64 * KiB, FixedStripeLayout([0, 1], 4 * KiB, obj="f")),
            Region(64 * KiB, 128 * KiB, FixedStripeLayout([0, 1], 8 * KiB, obj="f")),
        ]
    )


LAYOUTS = {
    "fixed": fixed,
    "varied": varied,
    "region": region_distinct,
    "region-shared-obj": region_shared_obj,
}

EXTENTS = [
    (0, 0),
    (0, 1),
    (0, 4 * KiB),
    (3 * KiB, 2 * KiB),
    (5 * KiB, 100 * KiB),
    (63 * KiB, 2 * KiB),  # straddles a region boundary
    (250 * KiB, 20 * KiB),  # into the unbounded tail region
    (1_000_000, 123_456),
]

extent_batches = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=512 * KiB),
        st.integers(min_value=0, max_value=64 * KiB),
    ),
    min_size=0,
    max_size=8,
)


def assert_runs_equal_object_path(layout, runs: MergedRuns, extents):
    assert runs.n_extents == len(extents)
    expected_fragments = 0
    for k, (offset, length) in enumerate(extents):
        fragments = layout.map_extent(offset, length)
        expected_fragments += len(fragments)
        assert runs.subrequests(k) == merge_fragments(fragments)
    assert runs.n_fragments == expected_fragments


class TestLayoutBatchEquivalence:
    @pytest.mark.parametrize("name", sorted(LAYOUTS))
    def test_map_extents_equals_loop(self, name):
        layout = LAYOUTS[name]()
        offsets = [o for o, _ in EXTENTS]
        lengths = [l for _, l in EXTENTS]
        batched = layout.map_extents(offsets, lengths)
        assert batched == [layout.map_extent(o, l) for o, l in EXTENTS]

    @pytest.mark.parametrize("name", sorted(LAYOUTS))
    def test_merged_runs_equals_object_path(self, name):
        layout = LAYOUTS[name]()
        offsets = [o for o, _ in EXTENTS]
        lengths = [l for _, l in EXTENTS]
        runs = merged_runs_of(layout, offsets, lengths)
        assert_runs_equal_object_path(layout, runs, EXTENTS)

    def test_shared_obj_region_has_no_batch_kernel(self):
        assert region_shared_obj().merged_extent_runs([0], [KiB]) is None
        assert region_distinct().merged_extent_runs([0], [KiB]) is not None

    @pytest.mark.parametrize("name", sorted(LAYOUTS))
    @given(extents=extent_batches)
    @settings(max_examples=50, deadline=None)
    def test_property_equivalence(self, name, extents):
        layout = LAYOUTS[name]()
        runs = merged_runs_of(
            layout, [o for o, _ in extents], [l for _, l in extents]
        )
        assert_runs_equal_object_path(layout, runs, extents)

    def test_empty_batch(self):
        runs = merged_runs_of(fixed(), [], [])
        assert runs.n_extents == 0
        assert runs.n_fragments == 0
        assert runs.starts == [0]


class TestRunsBuilder:
    def test_place_rebases_and_orders_by_item(self):
        layout = fixed()
        source = merged_runs_of(layout, [0, 8 * KiB], [8 * KiB, 4 * KiB])
        builder = RunsBuilder(3)
        builder.place(2, source, 0)  # out of order on purpose
        builder.place(0, source, 1, base=100)
        builder.add_fragments(source.n_fragments)
        built = builder.build()
        assert built.n_extents == 3
        assert built.subrequests(1) == []  # unplaced slot
        rebased = built.subrequests(0)
        plain = source.subrequests(1)
        assert [f.logical_offset for f in rebased] == [
            f.logical_offset + 100 for f in plain
        ]
        assert built.subrequests(2) == source.subrequests(0)
        assert built.n_fragments == source.n_fragments

    def test_place_fragments_counts_premerge(self):
        layout = fixed()
        fragments = layout.map_extent(0, 12 * KiB)
        builder = RunsBuilder(1)
        builder.place_fragments(0, fragments)
        built = builder.build()
        assert built.subrequests(0) == merge_fragments(fragments)
        assert built.n_fragments == len(fragments)

    def test_runs_from_fragments_already_merged(self):
        fragments = merge_fragments(fixed().map_extent(0, 12 * KiB))
        runs = runs_from_fragments(fragments, already_merged=True)
        assert runs.subrequests(0) == fragments
        assert runs.n_fragments == len(fragments)


class TestMergeFragments:
    def test_contiguous_same_object_coalesce(self):
        fragments = fixed().map_extent(0, 24 * KiB)
        merged = merge_fragments(fragments)
        # 6 stripes over 3 servers -> 2 contiguous stripes per object
        assert len(fragments) == 6
        assert len(merged) == 3
        assert sorted(f.length for f in merged) == [8 * KiB] * 3
        assert [f.logical_offset for f in merged] == sorted(
            f.logical_offset for f in merged
        )

    def test_noncontiguous_not_merged(self):
        layout = fixed()
        frags = layout.map_extent(0, 4 * KiB) + layout.map_extent(24 * KiB, 4 * KiB)
        merged = merge_fragments(frags)
        assert len(merged) == 2


class TestViewBatching:
    def make_view(self):
        spec = ClusterSpec(num_hservers=2, num_sservers=2)
        return LayoutView(
            {"f": FixedStripeLayout(spec.server_ids, 64 * KiB, obj="f")},
            default=FixedStripeLayout(spec.server_ids, 4 * KiB),
        )

    def test_map_requests_equals_map_request(self):
        view = self.make_view()
        offsets = [0, 100 * KiB, 0]
        lengths = [256 * KiB, 8 * KiB, 0]
        assert view.map_requests("f", offsets, lengths) == [
            view.map_request("f", o, l) for o, l in zip(offsets, lengths)
        ]

    def test_merged_runs_equals_merge_fragments(self):
        view = self.make_view()
        offsets = [0, 100 * KiB]
        lengths = [256 * KiB, 8 * KiB]
        runs = view.merged_runs("f", offsets, lengths)
        for k, (o, l) in enumerate(zip(offsets, lengths)):
            assert runs.subrequests(k) == merge_fragments(view.map_request("f", o, l))


class TestRedirectorBatching:
    def make(self):
        spec = ClusterSpec(num_hservers=2, num_sservers=2)
        drt = DRT()
        drt.add(DRTEntry("f", 0, 64 * KiB, "f.r0", 0))
        drt.add(DRTEntry("f", 128 * KiB, 64 * KiB, "f.r1", 32 * KiB))
        regions = {
            "f.r0": build_region_layout(spec, StripePair(0, 8 * KiB), "f.r0"),
            "f.r1": build_region_layout(spec, StripePair(4 * KiB, 16 * KiB), "f.r1"),
        }
        originals = {"f": FixedStripeLayout(spec.server_ids, 64 * KiB, obj="f")}
        return Redirector(drt, regions, originals)

    # mapped, fallthrough, straddling (multi-extent), zero-length
    OFFSETS = [0, 70 * KiB, 60 * KiB, 130 * KiB, 0]
    LENGTHS = [32 * KiB, 8 * KiB, 80 * KiB, 16 * KiB, 0]

    def test_map_requests_equals_map_request(self):
        batched, scalar = self.make(), self.make()
        got = batched.map_requests("f", self.OFFSETS, self.LENGTHS)
        want = [
            scalar.map_request("f", o, l)
            for o, l in zip(self.OFFSETS, self.LENGTHS)
        ]
        assert got == want
        assert batched.stats == scalar.stats

    def test_merged_runs_equals_object_path(self):
        batched, scalar = self.make(), self.make()
        runs = batched.merged_runs("f", self.OFFSETS, self.LENGTHS)
        for k, (o, l) in enumerate(zip(self.OFFSETS, self.LENGTHS)):
            assert runs.subrequests(k) == merge_fragments(
                scalar.map_request("f", o, l)
            )
        assert batched.stats == scalar.stats

"""Property tests: closed-form extent math vs. explicit fragment maps."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layouts import (
    VariedStripeLayout,
    bytes_in_window,
    per_server_bytes,
    per_server_bytes_batch,
    windows_touched,
)

stripe_sizes = st.integers(min_value=0, max_value=64)
extents = st.tuples(
    st.integers(min_value=0, max_value=5000),
    st.integers(min_value=1, max_value=3000),
)


def brute_force_bytes(offset, length, start, width, cycle):
    return sum(
        1 for x in range(offset, offset + length) if start <= (x % cycle) < start + width
    )


def brute_force_windows(offset, length, start, width, cycle):
    touched = set()
    for x in range(offset, offset + length):
        if start <= (x % cycle) < start + width:
            touched.add(x // cycle)
    return len(touched)


class TestBytesInWindow:
    @given(
        extent=extents,
        start=st.integers(min_value=0, max_value=50),
        width=st.integers(min_value=1, max_value=40),
        extra=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_brute_force(self, extent, start, width, extra):
        offset, length = extent
        cycle = start + width + extra
        assert bytes_in_window(offset, length, start, width, cycle) == brute_force_bytes(
            offset, length, start, width, cycle
        )

    def test_zero_width(self):
        assert bytes_in_window(0, 100, 0, 0, 10) == 0

    def test_zero_length(self):
        assert bytes_in_window(5, 0, 0, 4, 10) == 0

    def test_invalid_cycle(self):
        with pytest.raises(ValueError):
            bytes_in_window(0, 1, 0, 1, 0)


class TestWindowsTouched:
    @given(
        extent=extents,
        start=st.integers(min_value=0, max_value=50),
        width=st.integers(min_value=1, max_value=40),
        extra=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_brute_force(self, extent, start, width, extra):
        offset, length = extent
        cycle = start + width + extra
        assert windows_touched(
            offset, length, start, width, cycle
        ) == brute_force_windows(offset, length, start, width, cycle)

    def test_no_touch(self):
        # extent entirely inside the other class's span
        assert windows_touched(10, 5, 0, 8, 20) == 0


class TestPerServerBytes:
    @given(
        extent=extents,
        h=stripe_sizes,
        s=stripe_sizes,
        M=st.integers(min_value=0, max_value=4),
        N=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=200, deadline=None)
    def test_sums_to_extent_length(self, extent, h, s, M, N):
        offset, length = extent
        h_eff = h if M else 0
        s_eff = s if N else 0
        if M * h_eff + N * s_eff == 0:
            return  # degenerate layout: nothing mapped
        h_bytes, s_bytes = per_server_bytes(offset, length, M, N, h, s)
        assert int(h_bytes.sum() + s_bytes.sum()) == length

    @given(extent=extents, h=st.integers(1, 48), s=st.integers(1, 48))
    @settings(max_examples=150, deadline=None)
    def test_matches_fragment_mapper(self, extent, h, s):
        offset, length = extent
        M, N = 3, 2
        layout = VariedStripeLayout(list(range(M)), list(range(M, M + N)), h, s)
        h_bytes, s_bytes = per_server_bytes(offset, length, M, N, h, s)
        by_server = np.zeros(M + N, dtype=np.int64)
        for frag in layout.map_extent(offset, length):
            by_server[frag.server] += frag.length
        assert list(h_bytes) == list(by_server[:M])
        assert list(s_bytes) == list(by_server[M:])

    def test_batch_agrees_with_scalar(self):
        offsets = np.array([0, 100, 4096, 65536])
        lengths = np.array([50, 2048, 16384, 1])
        hb, sb = per_server_bytes_batch(offsets, lengths, 3, 2, 4096, 8192)
        for i, (o, l) in enumerate(zip(offsets, lengths)):
            hb1, sb1 = per_server_bytes(int(o), int(l), 3, 2, 4096, 8192)
            assert list(hb[i]) == list(hb1)
            assert list(sb[i]) == list(sb1)

    def test_batch_shape_validation(self):
        with pytest.raises(ValueError):
            per_server_bytes_batch(np.array([0]), np.array([1, 2]), 1, 1, 4, 4)

    def test_empty_batch(self):
        hb, sb = per_server_bytes_batch(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64), 2, 2, 4, 4
        )
        assert hb.shape == (0, 2) and sb.shape == (0, 2)

"""Tests for fixed round-robin striping."""

import pytest

from repro.exceptions import LayoutError
from repro.layouts import FixedStripeLayout, check_tiling
from repro.units import KiB


class TestMapping:
    def test_round_robin_order(self):
        layout = FixedStripeLayout([0, 1, 2], stripe=10)
        frags = layout.map_extent(0, 30)
        assert [f.server for f in frags] == [0, 1, 2]
        assert all(f.offset == 0 for f in frags)

    def test_second_cycle_advances_server_offset(self):
        layout = FixedStripeLayout([0, 1], stripe=10)
        frags = layout.map_extent(20, 20)
        assert [(f.server, f.offset) for f in frags] == [(0, 10), (1, 10)]

    def test_unaligned_extent(self):
        layout = FixedStripeLayout([0, 1], stripe=10)
        frags = layout.map_extent(5, 10)
        assert [(f.server, f.offset, f.length) for f in frags] == [
            (0, 5, 5),
            (1, 0, 5),
        ]

    def test_extent_within_one_stripe(self):
        layout = FixedStripeLayout([3, 4], stripe=64 * KiB)
        frags = layout.map_extent(1000, 50)
        assert len(frags) == 1
        assert frags[0].server == 3
        assert frags[0].offset == 1000

    def test_tiling_invariant(self):
        layout = FixedStripeLayout([0, 1, 2, 3], stripe=7)
        check_tiling(13, 555, layout.map_extent(13, 555))

    def test_zero_length_maps_to_nothing(self):
        layout = FixedStripeLayout([0], stripe=10)
        assert layout.map_extent(100, 0) == []

    def test_locate_single_byte(self):
        layout = FixedStripeLayout([0, 1], stripe=10)
        frag = layout.locate(15)
        assert frag.server == 1 and frag.offset == 5 and frag.length == 1

    def test_obj_label_propagates(self):
        layout = FixedStripeLayout([0], stripe=10, obj="myfile")
        assert layout.map_extent(0, 5)[0].obj == "myfile"

    def test_servers_property(self):
        assert FixedStripeLayout([5, 2, 9], stripe=4).servers == (5, 2, 9)


class TestValidation:
    def test_empty_servers_rejected(self):
        with pytest.raises(LayoutError):
            FixedStripeLayout([], stripe=10)

    def test_duplicate_servers_rejected(self):
        with pytest.raises(LayoutError):
            FixedStripeLayout([0, 0], stripe=10)

    def test_zero_stripe_rejected(self):
        with pytest.raises(LayoutError):
            FixedStripeLayout([0], stripe=0)

    def test_negative_offset_rejected(self):
        layout = FixedStripeLayout([0], stripe=10)
        with pytest.raises(LayoutError):
            layout.map_extent(-1, 10)

    def test_check_tiling_detects_gap(self):
        layout = FixedStripeLayout([0, 1], stripe=10)
        frags = layout.map_extent(0, 20)
        with pytest.raises(LayoutError):
            check_tiling(0, 20, frags[1:])

    def test_check_tiling_detects_short_coverage(self):
        layout = FixedStripeLayout([0, 1], stripe=10)
        frags = layout.map_extent(0, 20)
        with pytest.raises(LayoutError):
            check_tiling(0, 30, frags)

"""Hypothesis property tests on layout mapping invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layouts import (
    FixedStripeLayout,
    Region,
    RegionLayout,
    VariedStripeLayout,
    check_tiling,
)

extents = st.tuples(
    st.integers(min_value=0, max_value=100_000),
    st.integers(min_value=0, max_value=50_000),
)


@st.composite
def varied_layouts(draw):
    M = draw(st.integers(min_value=0, max_value=5))
    N = draw(st.integers(min_value=0, max_value=5))
    h = draw(st.integers(min_value=0, max_value=4096)) if M else 0
    s = draw(st.integers(min_value=0, max_value=4096)) if N else 0
    if (h if M else 0) == 0 and (s if N else 0) == 0:
        # ensure at least one active class
        if N:
            s = draw(st.integers(min_value=1, max_value=4096))
        else:
            M = max(M, 1)
            h = draw(st.integers(min_value=1, max_value=4096))
    return VariedStripeLayout(list(range(M)), list(range(M, M + N)), h, s)


class TestTilingProperties:
    @given(extent=extents, layout=varied_layouts())
    @settings(max_examples=200, deadline=None)
    def test_varied_tiles_every_extent(self, extent, layout):
        offset, length = extent
        frags = layout.map_extent(offset, length)
        check_tiling(offset, length, frags)

    @given(
        extent=extents,
        stripe=st.integers(min_value=1, max_value=8192),
        nservers=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=200, deadline=None)
    def test_fixed_tiles_every_extent(self, extent, stripe, nservers):
        offset, length = extent
        layout = FixedStripeLayout(list(range(nservers)), stripe)
        check_tiling(offset, length, layout.map_extent(offset, length))

    @given(extent=extents, layout=varied_layouts())
    @settings(max_examples=100, deadline=None)
    def test_no_server_overlap(self, extent, layout):
        """Two fragments on the same server object never overlap."""
        offset, length = extent
        spans: dict[tuple[int, str], list[tuple[int, int]]] = {}
        for f in layout.map_extent(offset, length):
            spans.setdefault((f.server, f.obj), []).append(
                (f.offset, f.offset + f.length)
            )
        for ranges in spans.values():
            ranges.sort()
            for (s1, e1), (s2, _e2) in zip(ranges, ranges[1:]):
                assert e1 <= s2

    @given(
        extent=extents,
        stripe=st.integers(min_value=1, max_value=4096),
    )
    @settings(max_examples=100, deadline=None)
    def test_mapping_is_deterministic_and_splittable(self, extent, stripe):
        """Mapping [a,b) equals mapping [a,m) + [m,b) fragment-for-byte."""
        offset, length = extent
        layout = FixedStripeLayout([0, 1, 2], stripe)
        mid = length // 2
        whole = layout.map_extent(offset, length)
        parts = layout.map_extent(offset, mid) + layout.map_extent(
            offset + mid, length - mid
        )

        def bytemap(frags):
            out = {}
            for f in frags:
                for i in range(f.length):
                    out[f.logical_offset + i] = (f.server, f.offset + i)
            return out

        if length <= 2048:  # keep the brute force cheap
            assert bytemap(whole) == bytemap(parts)

    @given(
        extent=extents,
        boundary=st.integers(min_value=1, max_value=50_000),
        s1=st.integers(min_value=1, max_value=4096),
        s2=st.integers(min_value=1, max_value=4096),
    )
    @settings(max_examples=100, deadline=None)
    def test_region_layout_tiles(self, extent, boundary, s1, s2):
        offset, length = extent
        layout = RegionLayout(
            [
                Region(0, boundary, FixedStripeLayout([0, 1], s1, obj="r0")),
                Region(
                    boundary,
                    boundary * 2,
                    VariedStripeLayout([0, 1], [2], h=s1, s=s2, obj="r1"),
                ),
            ]
        )
        check_tiling(offset, length, layout.map_extent(offset, length))

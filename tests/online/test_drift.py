"""Tests for drift detection, including the no-false-replan property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec
from repro.core import MHAPipeline
from repro.exceptions import ConfigurationError
from repro.online import (
    ControllerConfig,
    DriftDetector,
    RelayoutController,
    StreamingSketch,
    plan_centroids,
    relative_distance,
)
from repro.tracing import TraceRecord
from repro.units import KiB, MiB
from repro.workloads import IORWorkload


def rec(offset, size, ts, rank=0, op="write", file="f"):
    return TraceRecord(
        offset=offset, timestamp=ts, rank=rank, size=size, op=op, file=file
    )


@pytest.fixture
def spec():
    return ClusterSpec()


@pytest.fixture
def pipeline(spec):
    return MHAPipeline(spec, seed=0)


def ior_trace(sizes, processes=4, seed=1, total=4 * MiB):
    return IORWorkload(
        num_processes=processes,
        request_sizes=list(sizes),
        total_size=total,
        seed=seed,
        file="f",
    ).trace("write")


class TestPlanCentroids:
    def test_centroids_cover_every_region(self, pipeline):
        plan = pipeline.plan(ior_trace([32 * KiB, 128 * KiB]))
        centroids = plan_centroids(plan)
        assert set(centroids) == set(plan.region_layouts)

    def test_empty_plan_has_no_centroids(self, pipeline):
        from repro.tracing import Trace

        assert plan_centroids(pipeline.plan(Trace([]))) == {}


class TestRelativeDistance:
    def test_zero_at_center(self):
        assert relative_distance((64.0, 4.0), (64.0, 4.0)) == 0.0

    def test_scale_free(self):
        small = relative_distance((96.0, 4.0), (64.0, 4.0))
        large = relative_distance((96.0 * 1024, 4.0), (64.0 * 1024, 4.0))
        assert small == pytest.approx(large)

    def test_zero_axis_does_not_divide_by_zero(self):
        assert relative_distance((1.0, 0.5), (0.0, 0.0)) > 0


class TestDriftDetector:
    def test_shifted_sizes_flag_regions(self, pipeline):
        profile = ior_trace([32 * KiB])
        plan = pipeline.plan(profile)
        shifted = ior_trace([256 * KiB], seed=2, total=8 * MiB)
        sketch = StreamingSketch(gap=pipeline.gap, spatial=pipeline.spatial)
        for record in shifted.sorted_by_time():
            sketch.observe(record, plan)
        sketch.flush(plan)
        report = DriftDetector(threshold=0.5, min_samples=4).check(sketch, plan)
        assert report.drifted
        assert report.drifted_files == ["f"]
        assert "drift" in str(report)

    def test_min_samples_guards_stray_requests(self, pipeline):
        plan = pipeline.plan(ior_trace([32 * KiB]))
        sketch = StreamingSketch(gap=pipeline.gap, spatial=pipeline.spatial)
        lone = rec(0, 4 * MiB, 0.0)  # wildly off-centroid, but only one
        sketch.observe(lone, plan)
        sketch.flush(plan)
        report = DriftDetector(threshold=0.5, min_samples=8).check(sketch, plan)
        assert not report.drifted_regions

    def test_unmapped_traffic_flags_file(self, pipeline):
        trace = ior_trace([32 * KiB])
        plan = pipeline.plan(trace)
        sketch = StreamingSketch()
        beyond = max(r.offset + r.size for r in trace)
        for i in range(4):
            sketch.observe(
                rec(beyond + i * MiB, 64 * KiB, float(i) * 10, file="f"), plan
            )
        sketch.flush(plan)
        report = DriftDetector(unmapped_threshold=0.25).check(sketch, plan)
        assert report.drifted_files == ["f"]
        assert report.unmapped_fractions["f"] == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DriftDetector(threshold=0.0)
        with pytest.raises(ConfigurationError):
            DriftDetector(min_samples=0)
        with pytest.raises(ConfigurationError):
            DriftDetector(unmapped_threshold=1.5)


class TestNoFalseReplanProperty:
    """Traffic matching the active plan's centroids admits no replan."""

    @given(
        size=st.sampled_from([16 * KiB, 64 * KiB, 256 * KiB]),
        processes=st.sampled_from([2, 4, 8]),
        seed=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=12, deadline=None)
    def test_steady_traffic_never_admits_a_replan(self, size, processes, seed):
        spec = ClusterSpec()
        pipeline = MHAPipeline(spec, seed=0)
        trace = ior_trace([size], processes=processes, seed=seed, total=2 * MiB)
        plan = pipeline.plan(trace)
        controller = RelayoutController(
            pipeline,
            plan,
            ControllerConfig(window=len(trace), check_interval=max(1, len(trace) // 3)),
        )
        # replay the plan's own profile: the live features are exactly
        # the centroids, so no check may admit (or even attempt) a replan
        for record in trace.sorted_by_time():
            assert controller.observe(record) is None
        assert controller.replans_admitted == 0
        assert controller.replans_rejected == 0
        assert all(not r.drifted for r in controller.reports)

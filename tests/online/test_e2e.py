"""End-to-end acceptance: the phase-shift experiment and its CLI."""

import pytest

from repro.harness.cli import main
from repro.online import phase_shift_experiment
from repro.units import MiB


@pytest.fixture(scope="module")
def report():
    return phase_shift_experiment()


class TestPhaseShiftExperiment:
    def test_at_least_one_relayout_admitted(self, report):
        assert report.replans_admitted >= 1
        assert report.drift_checks >= 1
        assert any(d.admitted for d in report.decisions)

    def test_bytes_moved_matches_migrations(self, report):
        assert report.bytes_moved > 0
        assert report.bytes_moved == sum(m.bytes_moved for m in report.migrations)
        assert all(m.complete for m in report.migrations)

    def test_foreground_served_during_migration(self, report):
        """The migration overlaps live foreground traffic: it starts
        before the foreground finishes, and the contention shows up as
        a measurable (but bounded) slowdown."""
        migration = report.migrations[0]
        assert migration.started_at < report.foreground.makespan
        assert report.foreground_slowdown > 1.0
        assert report.foreground_slowdown < 2.0

    def test_live_beats_stop_the_world(self, report):
        assert report.total_makespan < report.stop_the_world_makespan

    def test_post_swap_mapping_byte_identical_to_offline_plan(self, report):
        assert report.offline_match_fraction == 1.0

    def test_describe_mentions_the_verdict(self, report):
        text = report.describe()
        assert "1 admitted" in text
        assert "ADMIT" in text

    def test_passes_validation(self):
        with pytest.raises(ValueError):
            phase_shift_experiment(passes=1)


class TestOnlineCLI:
    def test_online_subcommand_runs(self, capsys):
        assert main(["online", "--passes", "2", "--total-mib", "2"]) == 0
        out = capsys.readouterr().out
        assert "online relayout run" in out
        assert "replans" in out

    def test_online_subcommand_throttle_knob(self, capsys):
        assert main(["online", "--passes", "2", "--total-mib", "2",
                     "--throttle-mib", "64"]) == 0
        assert "bytes moved" in capsys.readouterr().out

    def test_legacy_figures_interface_intact(self, capsys):
        assert main(["fig12b", "--schemes", "DEF,MHA"]) == 0
        assert "MHA" in capsys.readouterr().out


class TestThrottleEffect:
    def test_throttle_stretches_migration(self):
        fast = phase_shift_experiment(passes=2)
        slow = phase_shift_experiment(passes=2, throttle=8 * MiB)
        assert slow.migrations[0].makespan > fast.migrations[0].makespan
        # the paced copy still moves every byte and commits
        assert slow.bytes_moved == fast.bytes_moved
        assert slow.replans_admitted == 1

"""Tests for the streaming feature sketch."""

import pytest

from repro.cluster import ClusterSpec
from repro.core import MHAPipeline
from repro.exceptions import ConfigurationError
from repro.online import RegionSketch, StreamingSketch
from repro.tracing import Trace, TraceRecord
from repro.units import KiB, MiB
from repro.workloads import IORWorkload


def rec(offset, size, ts, rank=0, op="write", file="f"):
    return TraceRecord(
        offset=offset, timestamp=ts, rank=rank, size=size, op=op, file=file
    )


@pytest.fixture
def spec():
    return ClusterSpec()


@pytest.fixture
def pipeline(spec):
    return MHAPipeline(spec, seed=0)


@pytest.fixture
def trace():
    return IORWorkload(
        num_processes=4,
        request_sizes=[32 * KiB, 128 * KiB],
        total_size=4 * MiB,
        seed=1,
        file="f",
    ).trace("write")


class TestRegionSketch:
    def test_window_evicts_oldest(self):
        sketch = RegionSketch(window=3)
        for size in (10, 20, 30, 40):
            sketch.update(size, 1)
        assert sketch.n == 3
        assert sketch.feature_point() == (30.0, 1.0)
        assert sketch.count == 4  # lifetime counter keeps counting

    def test_ewma_starts_at_first_sample(self):
        sketch = RegionSketch(alpha=0.5)
        sketch.update(100, 4)
        assert sketch.ewma_size == 100.0
        assert sketch.ewma_concurrency == 4.0
        sketch.update(200, 8)
        assert sketch.ewma_size == 150.0
        assert sketch.ewma_concurrency == 6.0

    def test_empty_feature_point(self):
        assert RegionSketch().feature_point() == (0.0, 0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RegionSketch(window=0)
        with pytest.raises(ConfigurationError):
            RegionSketch(alpha=0.0)


class TestStreamingSketch:
    def test_steady_traffic_reproduces_plan_features(self, pipeline, trace):
        """Replaying the profiled trace must land each region's live
        feature point on (or very near) its plan centroid — the
        commensurability the drift detector depends on."""
        plan = pipeline.plan(trace)
        sketch = StreamingSketch(gap=pipeline.gap, spatial=pipeline.spatial)
        for record in trace.sorted_by_time():
            sketch.observe(record, plan)
        sketch.flush(plan)

        from repro.online import plan_centroids, relative_distance

        centroids = plan_centroids(plan)
        assert sketch.regions, "no region received any sample"
        for region, region_sketch in sketch.regions.items():
            distance = relative_distance(
                region_sketch.feature_point(), centroids[region]
            )
            assert distance < 0.25, f"{region}: {distance}"

    def test_burst_closes_on_gap(self, pipeline, trace):
        plan = pipeline.plan(trace)
        sketch = StreamingSketch(gap=0.5)
        r1, r2 = trace.sorted_by_time()[:2]
        sketch.observe(r1, plan)
        assert not sketch.regions  # burst still open
        late = rec(r2.offset, r2.size, r1.timestamp + 10.0, file=r1.file)
        sketch.observe(late, plan)  # gap > 0.5 closes the first burst
        assert sketch.regions

    def test_unmapped_bytes_tallied(self, pipeline, trace):
        plan = pipeline.plan(trace)
        sketch = StreamingSketch()
        beyond = max(r.offset + r.size for r in trace)
        sketch.observe(rec(beyond + 1 * MiB, 64 * KiB, 0.0, file="f"), plan)
        sketch.flush(plan)
        assert sketch.unmapped_fraction("f") == 1.0
        assert sketch.files() == ["f"]

    def test_mapped_traffic_has_zero_unmapped_fraction(self, pipeline, trace):
        plan = pipeline.plan(trace)
        sketch = StreamingSketch(gap=pipeline.gap, spatial=pipeline.spatial)
        for record in trace.sorted_by_time():
            sketch.observe(record, plan)
        sketch.flush(plan)
        assert sketch.unmapped_fraction("f") == 0.0

    def test_reset_clears_everything(self, pipeline, trace):
        plan = pipeline.plan(trace)
        sketch = StreamingSketch()
        for record in trace.sorted_by_time():
            sketch.observe(record, plan)
        sketch.flush(plan)
        sketch.reset()
        assert not sketch.regions
        assert not sketch.traffic
        assert sketch.observed == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StreamingSketch(window=0)


class TestSnapshot:
    def test_snapshot_attributes_open_burst_whole(self, pipeline):
        """A snapshot taken mid-burst sees the burst's full width so
        far, and the live sketch later attributes it once, whole."""
        trace = IORWorkload(
            num_processes=8,
            request_sizes=[256 * KiB],
            total_size=2 * MiB,
            seed=0,
            file="f",
        ).trace("write")
        plan = pipeline.plan(trace)
        records = list(trace.sorted_by_time())
        sketch = StreamingSketch(gap=pipeline.gap, spatial=pipeline.spatial)
        for record in records[:2]:  # 2 of an 8-wide burst
            sketch.observe(record, plan)
        snap = sketch.snapshot(plan)
        # the snapshot closed the open burst with the width seen so far
        assert sum(rs.n for rs in snap.regions.values()) == 2
        # ... but the live sketch still has the burst open
        assert not sketch.regions
        for record in records[2:]:
            sketch.observe(record, plan)
        sketch.flush(plan)
        # one whole burst: every sample carries the full concurrency
        concs = [c for rs in sketch.regions.values() for _, c in rs.samples]
        assert concs == [8] * 8

    def test_snapshot_does_not_mutate_live_state(self, pipeline, trace):
        plan = pipeline.plan(trace)
        sketch = StreamingSketch(gap=pipeline.gap, spatial=pipeline.spatial)
        for record in trace.sorted_by_time():
            sketch.observe(record, plan)
        pending_before = {f: list(p) for f, p in sketch._pending.items()}
        samples_before = {r: list(s.samples) for r, s in sketch.regions.items()}
        snap = sketch.snapshot(plan)
        assert {f: list(p) for f, p in sketch._pending.items()} == pending_before
        assert {r: list(s.samples) for r, s in sketch.regions.items()} == (
            samples_before
        )
        # mutating the snapshot cannot leak back
        for rs in snap.regions.values():
            rs.update(1, 1)
        assert {r: list(s.samples) for r, s in sketch.regions.items()} == (
            samples_before
        )

"""Tests for the incremental re-planner."""

import pytest

from repro.cluster import ClusterSpec
from repro.core import MHAPipeline
from repro.online import (
    DriftDetector,
    IncrementalReplanner,
    StreamingSketch,
)
from repro.tracing import Trace
from repro.units import KiB, MiB
from repro.workloads import IORWorkload


@pytest.fixture
def spec():
    return ClusterSpec()


@pytest.fixture
def pipeline(spec):
    return MHAPipeline(spec, seed=0)


def ior_trace(sizes, file="f", seed=1, processes=4, total=4 * MiB):
    return IORWorkload(
        num_processes=processes,
        request_sizes=list(sizes),
        total_size=total,
        seed=seed,
        file=file,
    ).trace("write")


def drift_report_for(pipeline, plan, window):
    sketch = StreamingSketch(gap=pipeline.gap, spatial=pipeline.spatial)
    for record in window.sorted_by_time():
        sketch.observe(record, plan)
    sketch.flush(plan)
    return DriftDetector(threshold=0.5, min_samples=4).check(sketch, plan)


class TestIncrementalReplanner:
    def test_full_drift_rebuild_matches_offline_plan(self, spec, pipeline):
        """When every region of a file drifts, the replan must be the
        off-line plan of the window — same DRT, same stripe pairs, same
        request mapping."""
        old_plan = pipeline.plan(ior_trace([32 * KiB]))
        window = ior_trace([128 * KiB, 512 * KiB], seed=3, total=8 * MiB)
        report = drift_report_for(pipeline, old_plan, window)
        assert report.drifted

        outcome = IncrementalReplanner(pipeline, reuse_tolerance=0.0).replan(
            window, old_plan, report
        )
        offline = MHAPipeline(spec, seed=0).plan(window)
        assert sorted(map(str, outcome.plan.drt.entries_for("f"))) == sorted(
            map(str, offline.drt.entries_for("f"))
        )
        assert {n: (p.h, p.s) for n, p in outcome.plan.rst} == {
            n: (p.h, p.s) for n, p in offline.rst
        }
        for record in window:
            assert outcome.plan.redirector.map_request(
                record.file, record.offset, record.size
            ) == offline.redirector.map_request(record.file, record.offset, record.size)

    def test_undrifted_files_carried_verbatim(self, pipeline):
        steady = ior_trace([32 * KiB], file="steady.dat")
        moving = ior_trace([32 * KiB], file="moving.dat", seed=2)
        old_plan = pipeline.plan(Trace(list(steady) + list(moving)))

        window = ior_trace([256 * KiB], file="moving.dat", seed=5, total=8 * MiB)
        report = drift_report_for(pipeline, old_plan, window)
        assert report.drifted_files == ["moving.dat"]

        outcome = IncrementalReplanner(pipeline, reuse_tolerance=0.0).replan(
            window, old_plan, report
        )
        assert outcome.replanned_files == ["moving.dat"]
        assert sorted(map(str, outcome.plan.drt.entries_for("steady.dat"))) == sorted(
            map(str, old_plan.drt.entries_for("steady.dat"))
        )
        for region in old_plan.reorder_plans["steady.dat"].regions:
            old_pair = old_plan.rst.get(region.name)
            new_pair = outcome.plan.rst.get(region.name)
            assert (old_pair.h, old_pair.s) == (new_pair.h, new_pair.s)
        # the steady file keeps serving identically through the new plan
        for record in steady:
            assert outcome.plan.redirector.map_request(
                record.file, record.offset, record.size
            ) == old_plan.redirector.map_request(record.file, record.offset, record.size)

    def test_migration_entries_cover_only_rebuilt_files(self, pipeline):
        steady = ior_trace([32 * KiB], file="steady.dat")
        moving = ior_trace([32 * KiB], file="moving.dat", seed=2)
        old_plan = pipeline.plan(Trace(list(steady) + list(moving)))
        window = ior_trace([256 * KiB], file="moving.dat", seed=5, total=8 * MiB)
        report = drift_report_for(pipeline, old_plan, window)
        outcome = IncrementalReplanner(pipeline, reuse_tolerance=0.0).replan(
            window, old_plan, report
        )
        assert outcome.migration_entries
        assert {e.o_file for e in outcome.migration_entries} == {"moving.dat"}

    def test_reuse_skips_searches_for_matching_centroids(self, pipeline):
        """A near-identical pattern on an un-drifted region's centroid
        reuses its decision instead of searching again."""
        steady = ior_trace([32 * KiB], file="steady.dat")
        moving = ior_trace([32 * KiB], file="moving.dat", seed=2)
        old_plan = pipeline.plan(Trace(list(steady) + list(moving)))
        # drift moving.dat's byte population but keep its feature shape
        # identical to steady.dat's regions (same sizes, same ranks)
        window = ior_trace([32 * KiB], file="moving.dat", seed=9, total=8 * MiB)
        report = drift_report_for(pipeline, old_plan, window)
        report.drifted_files = ["moving.dat"]
        report.drifted_regions = [
            r.name for r in old_plan.reorder_plans["moving.dat"].regions
        ]
        outcome = IncrementalReplanner(pipeline, reuse_tolerance=0.5).replan(
            window, old_plan, report
        )
        assert outcome.reused_regions
        assert not outcome.searched_regions

"""Tests for the relayout controller lifecycle and the legacy shim."""

import pytest

from repro.cluster import ClusterSpec
from repro.core import MHAPipeline
from repro.core.pipeline import OnlinePipeline
from repro.exceptions import ConfigurationError
from repro.online import ControllerConfig, RelayoutController
from repro.units import KiB, MiB
from repro.workloads import IORWorkload


@pytest.fixture
def spec():
    return ClusterSpec()


@pytest.fixture
def pipeline(spec):
    return MHAPipeline(spec, seed=0)


def ior_trace(sizes, seed=1, processes=4, total=2 * MiB):
    return IORWorkload(
        num_processes=processes,
        request_sizes=list(sizes),
        total_size=total,
        seed=seed,
        file="f",
    ).trace("write")


@pytest.fixture
def shifted(pipeline):
    """A plan built for small requests plus the shifted live trace."""
    plan = pipeline.plan(ior_trace([16 * KiB], processes=2, total=1 * MiB))
    live = ior_trace([64 * KiB, 256 * KiB], seed=3, total=8 * MiB, processes=8)
    return plan, live


def drive(controller, trace):
    """Feed records until the controller returns an action (or runs out)."""
    for record in trace.sorted_by_time():
        action = controller.observe(record)
        if action is not None:
            return action
    return None


class TestRelayoutController:
    def test_shifted_traffic_admits_a_relayout(self, pipeline, shifted):
        plan, live = shifted
        controller = RelayoutController(
            pipeline,
            plan,
            ControllerConfig(
                window=len(live), check_interval=len(live), horizon=1e6
            ),
        )
        action = drive(controller, live)
        assert action is not None
        assert controller.in_flight is action
        assert controller.replans_admitted == 1
        assert action.decision.admitted
        assert action.migration_entries
        # while in flight, further records never start a second replan
        for record in live.sorted_by_time():
            assert controller.observe(record) is None

    def test_commit_activates_plan_and_resets_sketch(self, pipeline, shifted):
        plan, live = shifted
        controller = RelayoutController(
            pipeline,
            plan,
            ControllerConfig(window=len(live), check_interval=len(live), horizon=1e6),
        )
        action = drive(controller, live)
        controller.commit(action)
        assert controller.active_plan is action.plan
        assert controller.in_flight is None
        assert controller.sketch.observed == 0

    def test_abort_keeps_old_plan(self, pipeline, shifted):
        plan, live = shifted
        controller = RelayoutController(
            pipeline,
            plan,
            ControllerConfig(window=len(live), check_interval=len(live), horizon=1e6),
        )
        action = drive(controller, live)
        controller.abort(action)
        assert controller.active_plan is plan
        assert controller.in_flight is None

    def test_commit_of_foreign_action_rejected(self, pipeline, shifted):
        plan, live = shifted
        cfg = ControllerConfig(window=len(live), check_interval=len(live), horizon=1e6)
        c1 = RelayoutController(pipeline, plan, cfg)
        c2 = RelayoutController(pipeline, plan, cfg)
        action = drive(c1, live)
        with pytest.raises(ConfigurationError):
            c2.commit(action)
        with pytest.raises(ConfigurationError):
            c2.abort(action)

    def test_cooldown_suppresses_checks(self, pipeline, shifted):
        plan, live = shifted
        controller = RelayoutController(
            pipeline,
            plan,
            ControllerConfig(
                window=len(live),
                check_interval=len(live),
                horizon=1e6,
                cooldown=10 * len(live),
            ),
        )
        action = drive(controller, live)
        controller.commit(action)
        checks_before = controller.drift_checks
        for record in live.sorted_by_time():
            controller.observe(record)
        assert controller.drift_checks == checks_before  # still cooling down

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ControllerConfig(window=0)
        with pytest.raises(ConfigurationError):
            ControllerConfig(check_interval=0)
        with pytest.raises(ConfigurationError):
            ControllerConfig(cooldown=-1)

    def test_from_online_adapter(self, pipeline):
        controller = RelayoutController.from_online(pipeline, window=64)
        assert controller.config.window == 64
        assert not controller.active_plan.region_layouts


class TestDeprecatedOnlinePipeline:
    def test_buffer_is_bounded_deque(self, pipeline):
        from collections import deque

        online = OnlinePipeline(pipeline, window=4)
        trace = ior_trace([32 * KiB])
        for record in trace.sorted_by_time():
            online.observe(record)
        assert isinstance(online._buffer, deque)
        assert len(online._buffer) == 4

    def test_deprecation_pointer_in_docstring(self):
        assert "RelayoutController" in OnlinePipeline.__doc__

    def test_still_replans(self, pipeline):
        trace = ior_trace([32 * KiB])
        online = OnlinePipeline(pipeline, window=len(trace))
        plan = None
        for record in trace.sorted_by_time():
            plan = online.observe(record) or plan
        assert plan is not None
        assert online.replans == 1

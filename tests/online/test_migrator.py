"""Tests for the epoch redirector and live migration scheduler."""

import pytest

from repro.cluster import ClusterSpec
from repro.core import MHAPipeline
from repro.exceptions import ConfigurationError
from repro.online import EpochRedirector, LiveMigrationScheduler
from repro.pfs import HybridPFS
from repro.units import KiB, MiB
from repro.workloads import IORWorkload


@pytest.fixture
def spec():
    return ClusterSpec()


@pytest.fixture
def pipeline(spec):
    return MHAPipeline(spec, seed=0)


def ior_trace(sizes, seed=1, processes=4, total=4 * MiB):
    return IORWorkload(
        num_processes=processes,
        request_sizes=list(sizes),
        total_size=total,
        seed=seed,
        file="f",
    ).trace("write")


@pytest.fixture
def plans(pipeline):
    old_trace = ior_trace([32 * KiB])
    new_trace = ior_trace([128 * KiB, 512 * KiB], seed=3, total=8 * MiB)
    return pipeline.plan(old_trace), pipeline.plan(new_trace), old_trace, new_trace


class TestEpochRedirector:
    def test_transparent_before_epoch(self, plans):
        old_plan, _, old_trace, _ = plans
        epoch = EpochRedirector(old_plan)
        assert not epoch.migrating
        for r in old_trace:
            assert epoch.map_request(r.file, r.offset, r.size) == (
                old_plan.redirector.map_request(r.file, r.offset, r.size)
            )

    def test_unflipped_epoch_still_serves_old_mapping(self, plans):
        old_plan, new_plan, old_trace, _ = plans
        epoch = EpochRedirector(old_plan)
        epoch.begin_epoch(new_plan)
        assert epoch.migrating
        for r in old_trace:
            assert epoch.map_request(r.file, r.offset, r.size) == (
                old_plan.redirector.map_request(r.file, r.offset, r.size)
            )

    def test_flip_routes_only_that_region(self, plans):
        old_plan, new_plan, _, new_trace = plans
        epoch = EpochRedirector(old_plan)
        epoch.begin_epoch(new_plan)
        region = sorted(new_plan.region_layouts)[0]
        epoch.flip(region)
        inside = outside = 0
        for r in new_trace:
            touched = {
                e.file
                for e in new_plan.drt.translate(r.file, r.offset, r.size)
                if e.mapped
            }
            got = epoch.map_request(r.file, r.offset, r.size)
            if touched == {region}:
                # entirely within the flipped region: served by new plan
                assert got == new_plan.redirector.map_request(
                    r.file, r.offset, r.size
                )
                inside += 1
            elif region not in touched:
                # untouched by the flip: still the old mapping
                assert got == old_plan.redirector.map_request(
                    r.file, r.offset, r.size
                )
                outside += 1
        assert inside and outside

    def test_commit_serves_full_new_mapping(self, plans):
        old_plan, new_plan, _, new_trace = plans
        epoch = EpochRedirector(old_plan)
        epoch.begin_epoch(new_plan)
        epoch.commit()
        assert not epoch.migrating
        assert epoch.active_plan is new_plan
        assert epoch.epochs == 1
        for r in new_trace:
            assert epoch.map_request(r.file, r.offset, r.size) == (
                new_plan.redirector.map_request(r.file, r.offset, r.size)
            )

    def test_old_mappings_survive_commit_as_fallthrough(self, plans):
        """Bytes the new plan never reordered keep resolving through the
        previous epoch's chain."""
        old_plan, _, old_trace, _ = plans
        # a new plan for a different file leaves "f" entirely unmapped
        other = MHAPipeline(ClusterSpec(), seed=0).plan(
            IORWorkload(
                num_processes=2,
                request_sizes=64 * KiB,
                total_size=1 * MiB,
                file="g",
            ).trace("write")
        )
        epoch = EpochRedirector(old_plan)
        epoch.begin_epoch(other)
        epoch.commit()
        for r in old_trace:
            assert epoch.map_request(r.file, r.offset, r.size) == (
                old_plan.redirector.map_request(r.file, r.offset, r.size)
            )

    def test_lifecycle_errors(self, plans):
        old_plan, new_plan, _, _ = plans
        epoch = EpochRedirector(old_plan)
        with pytest.raises(ConfigurationError):
            epoch.flip("nope")
        with pytest.raises(ConfigurationError):
            epoch.commit()
        epoch.begin_epoch(new_plan)
        with pytest.raises(ConfigurationError):
            epoch.begin_epoch(new_plan)
        with pytest.raises(ConfigurationError):
            epoch.flip("not-a-region")


class TestLiveMigrationScheduler:
    def test_moves_every_byte_and_commits(self, spec, plans):
        old_plan, new_plan, _, _ = plans
        pfs = HybridPFS(spec)
        epoch = EpochRedirector(old_plan)
        scheduler = LiveMigrationScheduler(pfs, epoch)
        entries = list(new_plan.drt.entries_for("f"))
        committed = []
        scheduler.on_commit = committed.append
        report = scheduler.start(new_plan, entries)
        pfs.sim.run()
        assert report.bytes_moved == sum(e.length for e in entries)
        assert report.extents == len(entries)
        assert report.complete
        assert report.makespan > 0
        assert committed == [report]
        assert not epoch.migrating  # committed
        assert epoch.active_plan is new_plan
        assert set(report.flip_times) == set(new_plan.region_layouts)

    def test_throttle_slows_migration(self, spec, plans):
        old_plan, new_plan, _, _ = plans
        entries = list(new_plan.drt.entries_for("f"))

        def run(throttle):
            pfs = HybridPFS(spec)
            scheduler = LiveMigrationScheduler(
                pfs, EpochRedirector(old_plan), throttle=throttle
            )
            scheduler.start(new_plan, entries)
            pfs.sim.run()
            return scheduler.report.makespan

        fast = run(None)
        slow = run(1 * MiB)  # 1 MiB/s cap
        assert slow > fast
        # a 1 MiB/s cap on ~8 MiB of data must take at least a second
        # per parallel region copier
        assert slow >= sum(e.length for e in entries) / (1 * MiB) / len(
            new_plan.region_layouts
        )

    def test_empty_migration_commits_immediately(self, spec, plans):
        old_plan, new_plan, _, _ = plans
        pfs = HybridPFS(spec)
        epoch = EpochRedirector(old_plan)
        scheduler = LiveMigrationScheduler(pfs, epoch)
        report = scheduler.start(new_plan, [])
        assert report.bytes_moved == 0
        assert not epoch.migrating
        assert epoch.active_plan is new_plan

    def test_throttle_validation(self, spec, plans):
        old_plan, _, _, _ = plans
        with pytest.raises(ConfigurationError):
            LiveMigrationScheduler(
                HybridPFS(spec), EpochRedirector(old_plan), throttle=0
            )

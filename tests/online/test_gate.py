"""Tests for the cost/benefit admission gate."""

import pytest

from repro.cluster import ClusterSpec
from repro.core import MHAPipeline
from repro.core.params import CostModelParams
from repro.exceptions import ConfigurationError
from repro.online import CostBenefitGate, modelled_trace_cost
from repro.units import KiB, MiB
from repro.workloads import IORWorkload


@pytest.fixture
def spec():
    return ClusterSpec()


@pytest.fixture
def pipeline(spec):
    return MHAPipeline(spec, seed=0)


def ior_trace(sizes, seed=1, processes=8, total=4 * MiB):
    return IORWorkload(
        num_processes=processes,
        request_sizes=list(sizes),
        total_size=total,
        seed=seed,
        file="f",
    ).trace("write")


@pytest.fixture
def mismatch(pipeline):
    """An old plan built for small requests facing large ones, and the
    plan actually built for them."""
    old_plan = pipeline.plan(ior_trace([16 * KiB], processes=2, total=1 * MiB))
    window = ior_trace([64 * KiB, 256 * KiB], seed=3)
    new_plan = pipeline.plan(window)
    entries = list(new_plan.drt.entries_for("f"))
    return old_plan, new_plan, window, entries


class TestModelledTraceCost:
    def test_positive_for_nonempty_trace(self, spec, pipeline):
        params = CostModelParams.from_cluster(spec)
        window = ior_trace([64 * KiB])
        plan = pipeline.plan(window)
        assert modelled_trace_cost(params, plan, window) > 0

    def test_adapted_plan_is_cheaper(self, spec, mismatch):
        old_plan, new_plan, window, _ = mismatch
        params = CostModelParams.from_cluster(spec)
        old_cost = modelled_trace_cost(params, old_plan, window)
        new_cost = modelled_trace_cost(params, new_plan, window)
        assert new_cost < old_cost


class TestCostBenefitGate:
    def test_long_horizon_admits(self, spec, mismatch):
        old_plan, new_plan, window, entries = mismatch
        gate = CostBenefitGate(spec, horizon=1e6)
        decision = gate.evaluate(old_plan, new_plan, window, entries)
        assert decision.admitted
        assert decision.benefit_per_window > 0
        assert decision.bytes_to_move == sum(e.length for e in entries)
        assert "ADMIT" in str(decision)

    def test_short_horizon_rejects(self, spec, mismatch):
        old_plan, new_plan, window, entries = mismatch
        span = max(r.timestamp for r in window) - min(r.timestamp for r in window)
        gate = CostBenefitGate(spec, horizon=span / 100)
        decision = gate.evaluate(old_plan, new_plan, window, entries)
        assert not decision.admitted
        assert "REJECT" in str(decision)

    def test_negative_benefit_rejects_regardless_of_horizon(self, spec, mismatch):
        old_plan, new_plan, window, entries = mismatch
        gate = CostBenefitGate(spec, horizon=1e9)
        # swap roles: "migrating" from the adapted plan back to the bad one
        decision = gate.evaluate(new_plan, old_plan, window, entries)
        assert decision.benefit_per_window < 0
        assert not decision.admitted

    def test_safety_factor_demands_margin(self, spec, mismatch):
        old_plan, new_plan, window, entries = mismatch
        base = CostBenefitGate(spec, horizon=1e6).evaluate(
            old_plan, new_plan, window, entries
        )
        margin = base.projected_benefit / base.migration_time
        strict = CostBenefitGate(spec, horizon=1e6, safety=margin * 2)
        assert not strict.evaluate(old_plan, new_plan, window, entries).admitted

    def test_projected_benefit_scales_with_horizon(self, spec, mismatch):
        old_plan, new_plan, window, entries = mismatch
        d1 = CostBenefitGate(spec, horizon=100.0).evaluate(
            old_plan, new_plan, window, entries
        )
        d2 = CostBenefitGate(spec, horizon=200.0).evaluate(
            old_plan, new_plan, window, entries
        )
        assert d2.projected_benefit == pytest.approx(2 * d1.projected_benefit)

    def test_validation(self, spec):
        with pytest.raises(ConfigurationError):
            CostBenefitGate(spec, horizon=0)
        with pytest.raises(ConfigurationError):
            CostBenefitGate(spec, safety=0)

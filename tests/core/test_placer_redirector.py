"""Tests for the Placer and the I/O Redirector."""

import pytest

from repro.cluster import ClusterSpec
from repro.core import (
    DRT,
    DRTEntry,
    RST,
    Redirector,
    StripePair,
    build_region_layout,
    migration_schedule,
    place_regions,
)
from repro.exceptions import RedirectionError
from repro.layouts import FixedStripeLayout, check_tiling
from repro.units import KiB


@pytest.fixture
def spec():
    return ClusterSpec(num_hservers=2, num_sservers=2)


class TestPlacer:
    def test_build_region_layout_servers(self, spec):
        layout = build_region_layout(spec, StripePair(4 * KiB, 8 * KiB), obj="r0")
        assert set(layout.servers) == {0, 1, 2, 3}
        assert layout.obj == "r0"

    def test_h_zero_layout_uses_only_sservers(self, spec):
        layout = build_region_layout(spec, StripePair(0, 8 * KiB), obj="r0")
        assert set(layout.servers) == set(spec.sserver_ids)

    def test_place_regions_covers_rst(self, spec):
        rst = RST()
        rst.set("rA", StripePair(4 * KiB, 8 * KiB))
        rst.set("rB", StripePair(0, 16 * KiB))
        layouts = place_regions(spec, rst)
        assert set(layouts) == {"rA", "rB"}
        assert layouts["rA"].obj == "rA"

    def test_migration_schedule_in_offset_order(self):
        drt = DRT()
        drt.add(DRTEntry("f", 500, 100, "r0", 0))
        drt.add(DRTEntry("f", 0, 100, "r1", 0))
        steps = migration_schedule(drt)
        assert [s.entry.o_offset for s in steps] == [0, 500]
        assert steps[0].bytes == 100
        assert "copy" in str(steps[0])


class TestRedirector:
    def make(self, spec):
        drt = DRT()
        drt.add(DRTEntry("f", 0, 1000, "f.region0", 0))
        drt.add(DRTEntry("f", 2000, 500, "f.region1", 0))
        regions = {
            "f.region0": build_region_layout(spec, StripePair(0, 4 * KiB), "f.region0"),
            "f.region1": build_region_layout(
                spec, StripePair(4 * KiB, 8 * KiB), "f.region1"
            ),
        }
        originals = {"f": FixedStripeLayout(spec.server_ids, 64 * KiB, obj="f")}
        return Redirector(drt, regions, originals)

    def test_mapped_request_goes_to_region(self, spec):
        r = self.make(spec)
        frags = r.map_request("f", 0, 500)
        assert all(f.obj == "f.region0" for f in frags)
        check_tiling(0, 500, frags)

    def test_unmapped_request_falls_through(self, spec):
        r = self.make(spec)
        frags = r.map_request("f", 1000, 500)
        assert all(f.obj == "f" for f in frags)

    def test_straddling_request_tiles(self, spec):
        r = self.make(spec)
        frags = r.map_request("f", 500, 2000)  # region0 + gap + region1
        check_tiling(500, 2000, frags)
        objs = {f.obj for f in frags}
        assert objs == {"f.region0", "f", "f.region1"}

    def test_logical_offsets_in_original_space(self, spec):
        r = self.make(spec)
        frags = r.map_request("f", 2000, 500)
        assert frags[0].logical_offset == 2000

    def test_stats_counted(self, spec):
        r = self.make(spec)
        r.map_request("f", 0, 100)
        r.map_request("f", 1500, 100)
        assert r.stats.requests == 2
        assert r.stats.translated_extents == 1
        assert r.stats.fallthrough_extents == 1
        assert r.stats.fragments >= 2
        r.stats.reset()
        assert r.stats.requests == 0

    def test_missing_region_layout_raises(self, spec):
        drt = DRT()
        drt.add(DRTEntry("f", 0, 100, "ghost", 0))
        r = Redirector(drt, {}, {"f": FixedStripeLayout([0], 4 * KiB, obj="f")})
        with pytest.raises(RedirectionError):
            r.map_request("f", 0, 100)

    def test_unknown_file_raises(self, spec):
        r = self.make(spec)
        with pytest.raises(RedirectionError):
            r.map_request("unknown", 0, 100)

    def test_layout_for(self, spec):
        r = self.make(spec)
        assert r.layout_for("f").obj == "f"

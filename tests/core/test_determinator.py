"""Tests for Algorithm 2 (RSSD stripe-size determination)."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import CostModelParams, determine_stripes, search_bounds
from repro.core.determinator import BOUND_THRESHOLD_UNIT
from repro.exceptions import ConfigurationError
from repro.units import KiB


@pytest.fixture
def params():
    return CostModelParams.from_cluster(ClusterSpec())


def uniform_requests(size, count=16, conc=8):
    offsets = np.arange(count, dtype=np.int64) * size
    lengths = np.full(count, size, dtype=np.int64)
    is_read = np.zeros(count, dtype=bool)
    concurrency = np.full(count, conc, dtype=np.int64)
    return offsets, lengths, is_read, concurrency


class TestSearchBounds:
    def test_small_rmax_uses_rmax(self, params):
        b_h, b_s = search_bounds(params, 64 * KiB, 32 * KiB, 4 * KiB, "adaptive")
        assert b_h == b_s == 64 * KiB

    def test_large_rmax_divides_by_server_counts(self, params):
        r_max = (params.M + params.N) * BOUND_THRESHOLD_UNIT
        b_h, b_s = search_bounds(params, r_max, 0, 4 * KiB, "adaptive")
        assert b_h == r_max // params.M
        assert b_s == r_max // params.N

    def test_average_policy(self, params):
        b_h, b_s = search_bounds(params, 512 * KiB, 100 * KiB, 4 * KiB, "average")
        assert b_h == b_s == 100 * KiB

    def test_tiny_requests_keep_one_candidate(self, params):
        b_h, b_s = search_bounds(params, 16, 16, 4 * KiB, "adaptive")
        assert b_s >= 4 * KiB

    def test_unknown_policy(self, params):
        with pytest.raises(ConfigurationError):
            search_bounds(params, 64 * KiB, 1, 4 * KiB, "magic")


class TestDetermineStripes:
    def test_decision_within_bounds(self, params):
        decision = determine_stripes(params, *uniform_requests(128 * KiB))
        assert 0 <= decision.h <= decision.bound_h
        assert decision.s <= decision.bound_s
        assert decision.s >= decision.h  # s >= h invariant
        assert decision.cost > 0
        assert decision.candidates > 0

    def test_small_requests_prefer_sservers(self, params):
        decision = determine_stripes(params, *uniform_requests(16 * KiB, conc=8))
        # tiny requests: HServer startups dominate, so h should be 0
        assert decision.h == 0

    def test_large_requests_use_hservers(self, params):
        decision = determine_stripes(params, *uniform_requests(512 * KiB, conc=8))
        assert decision.h > 0

    def test_h_zero_can_be_disallowed(self, params):
        decision = determine_stripes(
            params, *uniform_requests(16 * KiB), allow_h_zero=False
        )
        assert decision.h > 0

    def test_strict_paper_loop(self, params):
        decision = determine_stripes(
            params, *uniform_requests(128 * KiB), allow_equal_stripes=False
        )
        assert decision.s > decision.h

    def test_step_respected(self, params):
        decision = determine_stripes(params, *uniform_requests(96 * KiB), step=8 * KiB)
        assert decision.h % (8 * KiB) == 0
        assert decision.s % (8 * KiB) == 0

    def test_no_sservers_cluster(self):
        params = CostModelParams.from_cluster(ClusterSpec(num_sservers=0))
        decision = determine_stripes(params, *uniform_requests(64 * KiB))
        assert decision.s == 0 and decision.h > 0

    def test_no_hservers_cluster(self):
        params = CostModelParams.from_cluster(
            ClusterSpec(num_hservers=0, num_sservers=2)
        )
        decision = determine_stripes(params, *uniform_requests(64 * KiB))
        assert decision.h == 0 and decision.s > 0

    def test_axis_cap_coarsens_grid(self, params):
        offsets, lengths, is_read, conc = uniform_requests(4 * 1024 * KiB, count=4)
        decision = determine_stripes(
            params, offsets, lengths, is_read, conc, max_axis_candidates=8
        )
        assert decision.candidates <= (8 + 1) * (8 + 1)

    def test_burst_mode_matches_concurrency_mode_for_singletons(self, params):
        offsets, lengths, is_read, conc = uniform_requests(64 * KiB, count=6, conc=1)
        bursts = np.arange(6)
        a = determine_stripes(params, offsets, lengths, is_read, conc)
        b = determine_stripes(
            params, offsets, lengths, is_read, conc, burst_ids=bursts
        )
        # singleton bursts reduce to Eq. 2: both searches agree
        assert a.pair == b.pair

    def test_burst_sampling_deterministic(self, params):
        count = 64
        offsets = np.arange(count, dtype=np.int64) * 64 * KiB
        lengths = np.full(count, 64 * KiB, dtype=np.int64)
        is_read = np.zeros(count, dtype=bool)
        conc = np.full(count, 4, dtype=np.int64)
        bursts = np.repeat(np.arange(16), 4)
        a = determine_stripes(
            params, offsets, lengths, is_read, conc,
            burst_ids=bursts, max_eval_requests=4, seed=3,
        )
        b = determine_stripes(
            params, offsets, lengths, is_read, conc,
            burst_ids=bursts, max_eval_requests=4, seed=3,
        )
        assert a.pair == b.pair and a.cost == b.cost

    def test_empty_region_rejected(self, params):
        with pytest.raises(ConfigurationError):
            determine_stripes(
                params,
                np.array([], dtype=np.int64),
                np.array([], dtype=np.int64),
                np.array([], dtype=bool),
                np.array([], dtype=np.int64),
            )

    def test_bad_shapes_rejected(self, params):
        with pytest.raises(ConfigurationError):
            determine_stripes(
                params,
                np.array([0]),
                np.array([1, 2]),
                np.array([True]),
                np.array([1]),
            )

    def test_zero_length_rejected(self, params):
        with pytest.raises(ConfigurationError):
            determine_stripes(
                params,
                np.array([0]),
                np.array([0]),
                np.array([True]),
                np.array([1]),
            )

    def test_mismatched_burst_ids_rejected(self, params):
        offsets, lengths, is_read, conc = uniform_requests(64 * KiB, count=4)
        with pytest.raises(ConfigurationError):
            determine_stripes(
                params, offsets, lengths, is_read, conc, burst_ids=np.array([1, 2])
            )

    def test_decision_is_grid_optimal(self, params):
        """The returned pair truly minimizes Reg_cost over the grid."""
        from repro.core.cost_model import burst_costs

        offsets, lengths, is_read, conc = uniform_requests(64 * KiB, count=8, conc=4)
        bursts = np.repeat(np.arange(2), 4)
        decision = determine_stripes(
            params, offsets, lengths, is_read, conc,
            burst_ids=bursts, step=16 * KiB,
        )
        step = 16 * KiB
        best = np.inf
        for h in range(0, decision.bound_h + 1, step):
            for s in range(max(h, step), decision.bound_s + 1, step):
                cost = burst_costs(
                    params, offsets, lengths, is_read, bursts, h, s
                ).sum()
                best = min(best, cost)
        assert decision.cost == pytest.approx(best)

"""Tests for Algorithm 2 (RSSD stripe-size determination)."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import CostModelParams, determine_stripes, search_bounds
from repro.core.determinator import BOUND_THRESHOLD_UNIT
from repro.exceptions import ConfigurationError
from repro.units import KiB


@pytest.fixture
def params():
    return CostModelParams.from_cluster(ClusterSpec())


def uniform_requests(size, count=16, conc=8):
    offsets = np.arange(count, dtype=np.int64) * size
    lengths = np.full(count, size, dtype=np.int64)
    is_read = np.zeros(count, dtype=bool)
    concurrency = np.full(count, conc, dtype=np.int64)
    return offsets, lengths, is_read, concurrency


class TestSearchBounds:
    def test_small_rmax_uses_rmax(self, params):
        b_h, b_s = search_bounds(params, 64 * KiB, 32 * KiB, 4 * KiB, "adaptive")
        assert b_h == b_s == 64 * KiB

    def test_large_rmax_divides_by_server_counts(self, params):
        r_max = (params.M + params.N) * BOUND_THRESHOLD_UNIT
        b_h, b_s = search_bounds(params, r_max, 0, 4 * KiB, "adaptive")
        assert b_h == r_max // params.M
        assert b_s == r_max // params.N

    def test_average_policy(self, params):
        b_h, b_s = search_bounds(params, 512 * KiB, 100 * KiB, 4 * KiB, "average")
        assert b_h == b_s == 100 * KiB

    def test_tiny_requests_keep_one_candidate(self, params):
        b_h, b_s = search_bounds(params, 16, 16, 4 * KiB, "adaptive")
        assert b_s >= 4 * KiB

    def test_unknown_policy(self, params):
        with pytest.raises(ConfigurationError):
            search_bounds(params, 64 * KiB, 1, 4 * KiB, "magic")


class TestDetermineStripes:
    def test_decision_within_bounds(self, params):
        decision = determine_stripes(params, *uniform_requests(128 * KiB))
        assert 0 <= decision.h <= decision.bound_h
        assert decision.s <= decision.bound_s
        assert decision.s >= decision.h  # s >= h invariant
        assert decision.cost > 0
        assert decision.candidates > 0

    def test_small_requests_prefer_sservers(self, params):
        decision = determine_stripes(params, *uniform_requests(16 * KiB, conc=8))
        # tiny requests: HServer startups dominate, so h should be 0
        assert decision.h == 0

    def test_large_requests_use_hservers(self, params):
        decision = determine_stripes(params, *uniform_requests(512 * KiB, conc=8))
        assert decision.h > 0

    def test_h_zero_can_be_disallowed(self, params):
        decision = determine_stripes(
            params, *uniform_requests(16 * KiB), allow_h_zero=False
        )
        assert decision.h > 0

    def test_strict_paper_loop(self, params):
        decision = determine_stripes(
            params, *uniform_requests(128 * KiB), allow_equal_stripes=False
        )
        assert decision.s > decision.h

    def test_step_respected(self, params):
        decision = determine_stripes(params, *uniform_requests(96 * KiB), step=8 * KiB)
        assert decision.h % (8 * KiB) == 0
        assert decision.s % (8 * KiB) == 0

    def test_no_sservers_cluster(self):
        params = CostModelParams.from_cluster(ClusterSpec(num_sservers=0))
        decision = determine_stripes(params, *uniform_requests(64 * KiB))
        assert decision.s == 0 and decision.h > 0

    def test_no_hservers_cluster(self):
        params = CostModelParams.from_cluster(
            ClusterSpec(num_hservers=0, num_sservers=2)
        )
        decision = determine_stripes(params, *uniform_requests(64 * KiB))
        assert decision.h == 0 and decision.s > 0

    def test_axis_cap_coarsens_grid(self, params):
        offsets, lengths, is_read, conc = uniform_requests(4 * 1024 * KiB, count=4)
        decision = determine_stripes(
            params, offsets, lengths, is_read, conc, max_axis_candidates=8
        )
        assert decision.candidates <= (8 + 1) * (8 + 1)

    def test_burst_mode_matches_concurrency_mode_for_singletons(self, params):
        offsets, lengths, is_read, conc = uniform_requests(64 * KiB, count=6, conc=1)
        bursts = np.arange(6)
        a = determine_stripes(params, offsets, lengths, is_read, conc)
        b = determine_stripes(
            params, offsets, lengths, is_read, conc, burst_ids=bursts
        )
        # singleton bursts reduce to Eq. 2: both searches agree
        assert a.pair == b.pair

    def test_burst_sampling_deterministic(self, params):
        count = 64
        offsets = np.arange(count, dtype=np.int64) * 64 * KiB
        lengths = np.full(count, 64 * KiB, dtype=np.int64)
        is_read = np.zeros(count, dtype=bool)
        conc = np.full(count, 4, dtype=np.int64)
        bursts = np.repeat(np.arange(16), 4)
        a = determine_stripes(
            params, offsets, lengths, is_read, conc,
            burst_ids=bursts, max_eval_requests=4, seed=3,
        )
        b = determine_stripes(
            params, offsets, lengths, is_read, conc,
            burst_ids=bursts, max_eval_requests=4, seed=3,
        )
        assert a.pair == b.pair and a.cost == b.cost

    def test_empty_region_rejected(self, params):
        with pytest.raises(ConfigurationError):
            determine_stripes(
                params,
                np.array([], dtype=np.int64),
                np.array([], dtype=np.int64),
                np.array([], dtype=bool),
                np.array([], dtype=np.int64),
            )

    def test_bad_shapes_rejected(self, params):
        with pytest.raises(ConfigurationError):
            determine_stripes(
                params,
                np.array([0]),
                np.array([1, 2]),
                np.array([True]),
                np.array([1]),
            )

    def test_zero_length_rejected(self, params):
        with pytest.raises(ConfigurationError):
            determine_stripes(
                params,
                np.array([0]),
                np.array([0]),
                np.array([True]),
                np.array([1]),
            )

    def test_mismatched_burst_ids_rejected(self, params):
        offsets, lengths, is_read, conc = uniform_requests(64 * KiB, count=4)
        with pytest.raises(ConfigurationError):
            determine_stripes(
                params, offsets, lengths, is_read, conc, burst_ids=np.array([1, 2])
            )

    def test_decision_is_grid_optimal(self, params):
        """The returned pair truly minimizes Reg_cost over the grid."""
        from repro.core.cost_model import burst_costs

        offsets, lengths, is_read, conc = uniform_requests(64 * KiB, count=8, conc=4)
        bursts = np.repeat(np.arange(2), 4)
        decision = determine_stripes(
            params, offsets, lengths, is_read, conc,
            burst_ids=bursts, step=16 * KiB,
        )
        step = 16 * KiB
        best = np.inf
        for h in range(0, decision.bound_h + 1, step):
            for s in range(max(h, step), decision.bound_s + 1, step):
                cost = burst_costs(
                    params, offsets, lengths, is_read, bursts, h, s
                ).sum()
                best = min(best, cost)
        assert decision.cost == pytest.approx(best)


class TestSearchBoundsEdges:
    """Boundary behavior of Algorithm 2's bound selection (line 3)."""

    def test_average_mean_below_step_floors_to_step(self, params):
        # a region of sub-4KB requests: the average bound would kill
        # every candidate, so B_s must be floored to one step
        step = 4 * KiB
        b_h, b_s = search_bounds(params, 2 * KiB, 1.5 * KiB, step, "average")
        assert b_s == step
        assert b_h == int(1.5 * KiB)  # h keeps the raw (small) bound

    def test_average_mean_truncates_fractional_bytes(self, params):
        b_h, b_s = search_bounds(params, 0, 100 * KiB + 0.75, 4 * KiB, "average")
        assert b_h == b_s == 100 * KiB

    def test_adaptive_exactly_at_threshold_divides(self, params):
        # the branch is `r_max < (M + N) * unit`: equality must take
        # the large-request arm and divide by the server counts
        r_max = (params.M + params.N) * BOUND_THRESHOLD_UNIT
        b_h, b_s = search_bounds(params, r_max, 0, 4 * KiB, "adaptive")
        assert b_h == r_max // params.M
        assert b_s == r_max // params.N

    def test_adaptive_one_byte_below_threshold_uses_rmax(self, params):
        r_max = (params.M + params.N) * BOUND_THRESHOLD_UNIT - 1
        b_h, b_s = search_bounds(params, r_max, 0, 4 * KiB, "adaptive")
        assert b_h == r_max
        assert b_s == r_max

    def test_custom_threshold_unit_moves_the_boundary(self, params):
        unit = 64 * KiB  # the paper's literal constant
        r_max = (params.M + params.N) * unit
        b_h, _ = search_bounds(
            params, r_max, 0, 4 * KiB, "adaptive", threshold_unit=unit
        )
        assert b_h == r_max // params.M
        b_h, b_s = search_bounds(
            params, r_max - 1, 0, 4 * KiB, "adaptive", threshold_unit=unit
        )
        assert b_h == b_s == r_max - 1


class TestDegenerateClusters:
    """Homogeneous (M=0 or N=0) clusters and the fallback-pair branch."""

    @pytest.mark.parametrize("engine", ["grid", "scalar"])
    def test_hserver_only_cluster_searches_h_axis(self, engine):
        params = CostModelParams.from_cluster(ClusterSpec(num_sservers=0))
        decision = determine_stripes(
            params, *uniform_requests(64 * KiB), engine=engine
        )
        assert decision.s == 0
        assert 0 < decision.h <= decision.bound_h
        assert decision.candidates > 0

    @pytest.mark.parametrize("engine", ["grid", "scalar"])
    def test_sserver_only_cluster_searches_s_axis(self, engine):
        params = CostModelParams.from_cluster(
            ClusterSpec(num_hservers=0, num_sservers=2)
        )
        decision = determine_stripes(
            params, *uniform_requests(64 * KiB), engine=engine
        )
        assert decision.h == 0
        assert 0 < decision.s <= decision.bound_s
        assert decision.candidates > 0

    def test_hserver_only_adaptive_bound_ignores_missing_sservers(self):
        # max(N, 1) in the divisor: no ZeroDivisionError when N == 0
        params = CostModelParams.from_cluster(ClusterSpec(num_sservers=0))
        r_max = params.M * BOUND_THRESHOLD_UNIT
        b_h, b_s = search_bounds(params, r_max, 0, 4 * KiB, "adaptive")
        assert b_h == r_max // params.M
        assert b_s == r_max

    @pytest.mark.parametrize("engine", ["grid", "scalar"])
    def test_pruned_grid_falls_back_to_smallest_legal_pair(self, engine, params):
        # tiny requests put B_s at one step; with h = 0 and equal
        # stripes both disallowed every candidate has s > B_s, so the
        # search grid is empty and the fallback pair must be used
        step = 4 * KiB
        offsets, lengths, is_read, conc = uniform_requests(2 * KiB, count=4)
        decision = determine_stripes(
            params, offsets, lengths, is_read, conc,
            step=step, allow_h_zero=False, allow_equal_stripes=False,
            engine=engine,
        )
        assert (decision.h, decision.s) == (step, 2 * step)
        assert decision.candidates == 1  # the fallback itself
        assert np.isfinite(decision.cost) and decision.cost > 0

    def test_fallback_pair_respects_h_zero(self, params):
        step = 4 * KiB
        offsets, lengths, is_read, conc = uniform_requests(2 * KiB, count=4)
        decision = determine_stripes(
            params, offsets, lengths, is_read, conc,
            step=step, allow_h_zero=True, allow_equal_stripes=False,
        )
        # with h = 0 allowed the empty-h candidate row still exists
        # (s from step to B_s), so the fallback only fires when that
        # row is empty too; either way the decision stays legal
        assert decision.s >= step
        assert decision.h in (0, step)

"""Tests for the Eq. 2 data-access cost model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec
from repro.core import CostModelParams, batch_costs, region_cost, request_cost
from repro.core.cost_model import burst_costs
from repro.units import KiB


@pytest.fixture
def params():
    return CostModelParams.from_cluster(ClusterSpec())


class TestRequestCost:
    def test_zero_length_free(self, params):
        assert request_cost(params, "read", 0, 0, 64 * KiB, 64 * KiB) == 0.0

    def test_cost_positive(self, params):
        assert request_cost(params, "read", 0, 64 * KiB, 32 * KiB, 96 * KiB) > 0

    def test_monotone_in_length_on_fixed_parallelism(self, params):
        # single-SServer placement: more bytes must cost strictly more
        costs = [
            request_cost(params, "read", 0, n * 64 * KiB, 0, 4096 * KiB)
            for n in (1, 2, 4, 8)
        ]
        assert costs == sorted(costs)
        assert costs[0] < costs[-1]

    def test_parallelism_absorbs_length(self, params):
        # with h == s == 64K, a 512K request has 64K on every server:
        # its completion equals a single 64K sub-request's time (Eq. 2)
        small = request_cost(params, "read", 0, 64 * KiB, 64 * KiB, 64 * KiB)
        large = request_cost(params, "read", 0, 512 * KiB, 64 * KiB, 64 * KiB)
        assert large == pytest.approx(small)

    def test_writes_cost_at_least_reads_on_sservers(self, params):
        # SSD write bandwidth < read bandwidth, startup higher
        r = request_cost(params, "read", 0, 256 * KiB, 0, 64 * KiB)
        w = request_cost(params, "write", 0, 256 * KiB, 0, 64 * KiB)
        assert w >= r

    def test_ssd_only_cheaper_for_small_requests(self, params):
        # the hybrid-PFS premise: small requests belong on SServers
        on_ssd = request_cost(params, "read", 0, 16 * KiB, 0, 16 * KiB)
        on_hdd = request_cost(params, "read", 0, 16 * KiB, 16 * KiB, 0)
        assert on_ssd < on_hdd

    def test_invalid_op(self, params):
        with pytest.raises(ValueError):
            request_cost(params, "fsync", 0, 1024, 4096, 8192)

    def test_eq2_shape_single_request(self, params):
        """With c == 1, the cost is max over involved servers of
        p·α + s_i·(t + β), p == 1."""
        h, s = 64 * KiB, 64 * KiB
        length = 64 * KiB  # lands on exactly one HServer at offset 0
        got = request_cost(params, "read", 0, length, h, s)
        expected = (
            params.alpha_h
            + params.net_latency
            + length * (params.t + params.beta_h)
        )
        assert got == pytest.approx(expected)

    def test_concurrency_increases_cost(self, params):
        low = request_cost(params, "read", 0, 256 * KiB, 0, 4 * KiB, concurrency=1)
        high = request_cost(params, "read", 0, 256 * KiB, 0, 4 * KiB, concurrency=16)
        assert high > low


class TestBatchCosts:
    def test_matches_scalar(self, params):
        offsets = np.array([0, 128 * KiB, 1 * KiB])
        lengths = np.array([64 * KiB, 256 * KiB, 512])
        is_read = np.array([True, False, True])
        conc = np.array([1, 4, 2])
        batch = batch_costs(params, offsets, lengths, is_read, conc, 32 * KiB, 96 * KiB)
        for i in range(3):
            got = request_cost(
                params,
                "read" if is_read[i] else "write",
                int(offsets[i]),
                int(lengths[i]),
                32 * KiB,
                96 * KiB,
                concurrency=int(conc[i]),
            )
            assert batch[i] == pytest.approx(got)

    def test_region_cost_is_sum(self, params):
        offsets = np.array([0, 64 * KiB])
        lengths = np.array([64 * KiB, 64 * KiB])
        is_read = np.array([True, True])
        conc = np.array([1, 1])
        total = region_cost(params, offsets, lengths, is_read, conc, 16 * KiB, 48 * KiB)
        each = batch_costs(params, offsets, lengths, is_read, conc, 16 * KiB, 48 * KiB)
        assert total == pytest.approx(each.sum())

    @given(
        h=st.integers(min_value=0, max_value=32) | st.just(0),
        s=st.integers(min_value=1, max_value=64),
        length=st.integers(min_value=1, max_value=1 << 20),
        conc=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_costs_always_positive_and_finite(self, h, s, length, conc):
        params = CostModelParams.from_cluster(ClusterSpec())
        cost = batch_costs(
            params,
            np.array([0]),
            np.array([length]),
            np.array([True]),
            np.array([conc]),
            h * 4096,
            s * 4096,
        )[0]
        assert np.isfinite(cost) and cost > 0


class TestBurstCosts:
    def test_singleton_bursts_equal_eq2(self, params):
        offsets = np.array([0, 256 * KiB])
        lengths = np.array([64 * KiB, 128 * KiB])
        is_read = np.array([True, False])
        ids = np.array([0, 1])
        per_burst = burst_costs(params, offsets, lengths, is_read, ids, 32 * KiB, 96 * KiB)
        per_req = batch_costs(
            params, offsets, lengths, is_read, np.array([1, 1]), 32 * KiB, 96 * KiB
        )
        assert per_burst == pytest.approx(per_req)

    def test_burst_completes_at_slowest_server(self, params):
        # two requests in one burst landing on the same HServer: the
        # burst pays two startups there
        h, s = 64 * KiB, 64 * KiB
        cycle = 6 * h + 2 * s
        offsets = np.array([0, cycle])  # same HServer, consecutive cycles
        lengths = np.array([64 * KiB, 64 * KiB])
        is_read = np.array([True, True])
        one_burst = burst_costs(
            params, offsets, lengths, is_read, np.array([7, 7]), h, s
        )
        assert len(one_burst) == 1
        expected = 2 * (params.alpha_h + params.net_latency) + 2 * 64 * KiB * (
            params.t + params.beta_h
        )
        assert one_burst[0] == pytest.approx(expected)

    def test_burst_spread_over_servers_is_cheaper(self, params):
        # same total bytes; spread burst touches different servers
        h, s = 64 * KiB, 64 * KiB
        lengths = np.array([64 * KiB] * 4)
        is_read = np.array([True] * 4)
        ids = np.zeros(4, dtype=int)
        spread = burst_costs(
            params, np.arange(4) * 64 * KiB, lengths, is_read, ids, h, s
        )[0]
        cycle = 6 * h + 2 * s
        clumped = burst_costs(
            params, np.arange(4) * cycle, lengths, is_read, ids, h, s
        )[0]
        assert spread < clumped

    def test_empty_input(self, params):
        out = burst_costs(
            params,
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
            np.array([], dtype=bool),
            np.array([], dtype=np.int64),
            4096,
            8192,
        )
        assert out.shape == (0,)

    def test_mixed_ops_in_one_burst(self, params):
        # a read and a write on SServers: each contributes its own alpha/beta
        offsets = np.array([0, 4096])
        lengths = np.array([4096, 4096])
        is_read = np.array([True, False])
        ids = np.array([0, 0])
        cost = burst_costs(params, offsets, lengths, is_read, ids, 0, 4096)[0]
        lam = params.net_latency
        s0 = (params.alpha_sr + lam) + 4096 * (params.t + params.beta_sr)
        s1 = (params.alpha_sw + lam) + 4096 * (params.t + params.beta_sw)
        assert cost == pytest.approx(max(s0, s1))

"""The executor layer: job resolution, order preservation, fallbacks
and error context propagation."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core.determinator import region_search_task
from repro.core.parallel import (
    JOBS_ENV_VAR,
    RegionSearchError,
    parallel_map,
    resolve_jobs,
)
from repro.core.params import CostModelParams
from repro.exceptions import ConfigurationError


def square(x):
    return x * x


def boom(x):
    raise ValueError(f"bad item {x}")


def boom_on_two(x):
    if x == 2:
        raise ValueError("two is right out")
    return x


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "7")
        assert resolve_jobs(3) == 3

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "5")
        assert resolve_jobs() == 5

    def test_default_is_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs() == (os.cpu_count() or 1)

    def test_bad_env_var(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        with pytest.raises(ConfigurationError):
            resolve_jobs()

    @pytest.mark.parametrize("bad", [0, -1])
    def test_nonpositive_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            resolve_jobs(bad)


class TestParallelMap:
    def test_serial_preserves_order(self):
        assert parallel_map(square, [3, 1, 2], n_jobs=1) == [9, 1, 4]

    def test_process_pool_preserves_order(self):
        items = list(range(20))
        assert parallel_map(square, items, n_jobs=2) == [x * x for x in items]

    def test_empty_items(self):
        assert parallel_map(square, [], n_jobs=4) == []

    def test_single_item_stays_serial(self):
        assert parallel_map(square, [6], n_jobs=8) == [36]

    def test_label_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            parallel_map(square, [1, 2], n_jobs=1, labels=["only-one"])

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_worker_error_carries_label_and_cause(self, jobs):
        with pytest.raises(RegionSearchError) as info:
            parallel_map(
                boom_on_two, [1, 2, 3], n_jobs=jobs, labels=["a", "b", "c"]
            )
        assert info.value.label == "b"
        assert "ValueError" in str(info.value)
        assert "two is right out" in str(info.value)
        assert isinstance(info.value.__cause__, ValueError)

    def test_default_labels_are_indices(self):
        with pytest.raises(RegionSearchError) as info:
            parallel_map(boom, [10], n_jobs=1)
        assert info.value.label == "#0"

    def test_unpicklable_function_falls_back_to_serial(self):
        # a lambda cannot cross the process boundary; the pool path
        # must degrade to the serial loop, not crash
        # the lambda below is the point of the test: it must NOT cross
        # the process boundary, and the runtime must degrade gracefully
        result = parallel_map(
            lambda x: x + 1, [1, 2, 3], n_jobs=2  # repro-lint: disable=RL003
        )
        assert result == [2, 3, 4]


class TestRegionSearchTask:
    """The module-level worker entry drives a real region search."""

    def _task(self, engine):
        params = CostModelParams.from_cluster(ClusterSpec())
        rng = np.random.default_rng(0)
        offsets = rng.integers(0, 1 << 20, 24)
        lengths = rng.integers(1, 1 << 16, 24)
        is_read = rng.random(24) < 0.5
        conc = rng.integers(1, 8, 24)
        return (
            params,
            offsets,
            lengths,
            is_read,
            conc,
            None,
            dict(step=4096, engine=engine),
        )

    def test_matches_direct_call(self):
        from repro.core.determinator import determine_stripes

        task = self._task("grid")
        params, offsets, lengths, is_read, conc, _, kwargs = task
        direct = determine_stripes(
            params, offsets, lengths, is_read, conc, **kwargs
        )
        via_task = region_search_task(task)
        assert via_task.pair == direct.pair
        assert via_task.cost == direct.cost

    def test_runs_across_processes(self):
        tasks = [self._task("grid"), self._task("scalar")]
        grid, scalar = parallel_map(
            region_search_task, tasks, n_jobs=2, labels=["g", "s"]
        )
        assert grid.pair == scalar.pair
        assert grid.cost == scalar.cost

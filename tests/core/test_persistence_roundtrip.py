"""Tests for restoring a plan from its persisted metadata (load_plan)
and for the simulated migration."""

import pytest

from repro.cluster import ClusterSpec
from repro.core import MHAPipeline, load_plan, verify_plan
from repro.pfs import run_workload, simulate_migration
from repro.units import KiB, MiB
from repro.workloads import IORWorkload, LANLWorkload


@pytest.fixture
def spec():
    return ClusterSpec()


@pytest.fixture
def trace():
    return IORWorkload(
        num_processes=8,
        request_sizes=[32 * KiB, 128 * KiB],
        total_size=8 * MiB,
        seed=4,
    ).trace("write")


class TestLoadPlan:
    def test_restored_plan_maps_identically(self, spec, trace, tmp_path):
        pipeline = MHAPipeline(
            spec, seed=0, drt_path=tmp_path / "drt.db", rst_path=tmp_path / "rst.db"
        )
        original = pipeline.plan(trace)
        expected = {
            (r.offset, r.size): original.redirector.map_request(
                r.file, r.offset, r.size
            )
            for r in trace
        }
        original.drt.close()
        original.rst.close()

        restored = load_plan(spec, tmp_path / "drt.db", tmp_path / "rst.db")
        for record in trace:
            got = restored.redirector.map_request(
                record.file, record.offset, record.size
            )
            assert got == expected[(record.offset, record.size)]

    def test_restored_plan_replays_identically(self, spec, trace, tmp_path):
        pipeline = MHAPipeline(
            spec, seed=0, drt_path=tmp_path / "drt.db", rst_path=tmp_path / "rst.db"
        )
        original = pipeline.plan(trace)
        m1 = run_workload(spec, original.redirector, trace)
        original.drt.close()
        original.rst.close()
        restored = load_plan(spec, tmp_path / "drt.db", tmp_path / "rst.db")
        m2 = run_workload(spec, restored.redirector, trace)
        assert m1.makespan == m2.makespan

    def test_restored_plan_passes_structural_audit(self, spec, trace, tmp_path):
        pipeline = MHAPipeline(
            spec, seed=0, drt_path=tmp_path / "drt.db", rst_path=tmp_path / "rst.db"
        )
        plan = pipeline.plan(trace)
        plan.drt.close()
        plan.rst.close()
        restored = load_plan(spec, tmp_path / "drt.db", tmp_path / "rst.db")
        report = verify_plan(restored, trace)
        assert report.ok, str(report)


class TestSimulatedMigration:
    def test_migration_moves_every_drt_byte(self, spec):
        trace = LANLWorkload(num_processes=4, loops=8).trace("write")
        plan = MHAPipeline(spec, seed=0).plan(trace)
        metrics = simulate_migration(spec, plan)
        assert metrics.bytes_moved == plan.migrated_bytes()
        assert metrics.extents == len(plan.drt)
        assert metrics.makespan > 0
        assert metrics.bandwidth > 0

    def test_migration_time_within_sanity_bounds(self, spec, trace):
        plan = MHAPipeline(spec, seed=0).plan(trace)
        migration = simulate_migration(spec, plan)
        production = run_workload(spec, plan.redirector, trace)
        # the one-off copy reads + writes every byte: same order of
        # magnitude as one production run, not dozens of them
        assert migration.makespan < 20 * production.makespan

    def test_empty_plan_migrates_nothing(self, spec):
        from repro.tracing import Trace

        plan = MHAPipeline(spec, seed=0).plan(Trace([]))
        metrics = simulate_migration(spec, plan)
        assert metrics.bytes_moved == 0
        assert metrics.makespan == 0.0
        assert metrics.bandwidth == 0.0


class TestLoadPlanRoundTripInvariants:
    def test_rst_pairs_survive_round_trip(self, spec, trace, tmp_path):
        pipeline = MHAPipeline(
            spec, seed=0, drt_path=tmp_path / "drt.db", rst_path=tmp_path / "rst.db"
        )
        original = pipeline.plan(trace)
        pairs = {name: (p.h, p.s) for name, p in original.rst}
        original.drt.close()
        original.rst.close()
        restored = load_plan(spec, tmp_path / "drt.db", tmp_path / "rst.db")
        assert {name: (p.h, p.s) for name, p in restored.rst} == pairs

    def test_drt_entries_survive_round_trip(self, spec, trace, tmp_path):
        pipeline = MHAPipeline(
            spec, seed=0, drt_path=tmp_path / "drt.db", rst_path=tmp_path / "rst.db"
        )
        original = pipeline.plan(trace)
        entries = sorted(
            (e.o_file, e.o_offset, e.length, e.r_file, e.r_offset)
            for e in original.drt
        )
        original.drt.close()
        original.rst.close()
        restored = load_plan(spec, tmp_path / "drt.db", tmp_path / "rst.db")
        assert entries == sorted(
            (e.o_file, e.o_offset, e.length, e.r_file, e.r_offset)
            for e in restored.drt
        )

    def test_restored_plan_migrates_identically(self, spec, trace, tmp_path):
        pipeline = MHAPipeline(
            spec, seed=0, drt_path=tmp_path / "drt.db", rst_path=tmp_path / "rst.db"
        )
        original = pipeline.plan(trace)
        m1 = simulate_migration(spec, original)
        original.drt.close()
        original.rst.close()
        restored = load_plan(spec, tmp_path / "drt.db", tmp_path / "rst.db")
        m2 = simulate_migration(spec, restored)
        assert m1.bytes_moved == m2.bytes_moved
        assert m1.extents == m2.extents
        assert m1.makespan == m2.makespan


class TestMigrationMetricInvariants:
    def test_bytes_moved_equals_drt_extent_sum(self, spec, trace):
        plan = MHAPipeline(spec, seed=0).plan(trace)
        metrics = simulate_migration(spec, plan)
        assert metrics.bytes_moved == sum(e.length for e in plan.drt)
        # the DRT claims each reordered byte exactly once, so the copy
        # volume also equals the plan's own accounting
        assert metrics.bytes_moved == plan.migrated_bytes()

    def test_bandwidth_is_bytes_over_makespan(self, spec, trace):
        plan = MHAPipeline(spec, seed=0).plan(trace)
        metrics = simulate_migration(spec, plan)
        assert metrics.makespan > 0
        assert metrics.bandwidth == pytest.approx(
            metrics.bytes_moved / metrics.makespan
        )

    def test_bandwidth_bounded_by_cluster_capability(self, spec, trace):
        """Effective copy bandwidth can never exceed the aggregate
        device ceiling (1/beta bytes per second per server)."""
        plan = MHAPipeline(spec, seed=0).plan(trace)
        metrics = simulate_migration(spec, plan)
        ceiling = sum(
            1.0
            / min(
                spec.device_for(s).beta("read"), spec.device_for(s).beta("write")
            )
            for s in spec.server_ids
        )
        assert metrics.bandwidth <= ceiling

"""Tests for restoring a plan from its persisted metadata (load_plan)
and for the simulated migration."""

import pytest

from repro.cluster import ClusterSpec
from repro.core import MHAPipeline, load_plan, verify_plan
from repro.pfs import run_workload, simulate_migration
from repro.units import KiB, MiB
from repro.workloads import IORWorkload, LANLWorkload


@pytest.fixture
def spec():
    return ClusterSpec()


@pytest.fixture
def trace():
    return IORWorkload(
        num_processes=8,
        request_sizes=[32 * KiB, 128 * KiB],
        total_size=8 * MiB,
        seed=4,
    ).trace("write")


class TestLoadPlan:
    def test_restored_plan_maps_identically(self, spec, trace, tmp_path):
        pipeline = MHAPipeline(
            spec, seed=0, drt_path=tmp_path / "drt.db", rst_path=tmp_path / "rst.db"
        )
        original = pipeline.plan(trace)
        expected = {
            (r.offset, r.size): original.redirector.map_request(
                r.file, r.offset, r.size
            )
            for r in trace
        }
        original.drt.close()
        original.rst.close()

        restored = load_plan(spec, tmp_path / "drt.db", tmp_path / "rst.db")
        for record in trace:
            got = restored.redirector.map_request(
                record.file, record.offset, record.size
            )
            assert got == expected[(record.offset, record.size)]

    def test_restored_plan_replays_identically(self, spec, trace, tmp_path):
        pipeline = MHAPipeline(
            spec, seed=0, drt_path=tmp_path / "drt.db", rst_path=tmp_path / "rst.db"
        )
        original = pipeline.plan(trace)
        m1 = run_workload(spec, original.redirector, trace)
        original.drt.close()
        original.rst.close()
        restored = load_plan(spec, tmp_path / "drt.db", tmp_path / "rst.db")
        m2 = run_workload(spec, restored.redirector, trace)
        assert m1.makespan == m2.makespan

    def test_restored_plan_passes_structural_audit(self, spec, trace, tmp_path):
        pipeline = MHAPipeline(
            spec, seed=0, drt_path=tmp_path / "drt.db", rst_path=tmp_path / "rst.db"
        )
        plan = pipeline.plan(trace)
        plan.drt.close()
        plan.rst.close()
        restored = load_plan(spec, tmp_path / "drt.db", tmp_path / "rst.db")
        report = verify_plan(restored, trace)
        assert report.ok, str(report)


class TestSimulatedMigration:
    def test_migration_moves_every_drt_byte(self, spec):
        trace = LANLWorkload(num_processes=4, loops=8).trace("write")
        plan = MHAPipeline(spec, seed=0).plan(trace)
        metrics = simulate_migration(spec, plan)
        assert metrics.bytes_moved == plan.migrated_bytes()
        assert metrics.extents == len(plan.drt)
        assert metrics.makespan > 0
        assert metrics.bandwidth > 0

    def test_migration_time_within_sanity_bounds(self, spec, trace):
        plan = MHAPipeline(spec, seed=0).plan(trace)
        migration = simulate_migration(spec, plan)
        production = run_workload(spec, plan.redirector, trace)
        # the one-off copy reads + writes every byte: same order of
        # magnitude as one production run, not dozens of them
        assert migration.makespan < 20 * production.makespan

    def test_empty_plan_migrates_nothing(self, spec):
        from repro.tracing import Trace

        plan = MHAPipeline(spec, seed=0).plan(Trace([]))
        metrics = simulate_migration(spec, plan)
        assert metrics.bytes_moved == 0
        assert metrics.makespan == 0.0
        assert metrics.bandwidth == 0.0

"""Tests for the Region Stripe Table."""

import pytest

from repro.core import RST, StripePair
from repro.exceptions import RedirectionError


class TestStripePair:
    def test_str(self):
        assert str(StripePair(4096, 8192)) == "<4096, 8192>"

    def test_zero_pair_rejected(self):
        with pytest.raises(RedirectionError):
            StripePair(0, 0)

    def test_negative_rejected(self):
        with pytest.raises(RedirectionError):
            StripePair(-1, 4096)

    def test_h_zero_allowed(self):
        assert StripePair(0, 4096).h == 0


class TestRST:
    def test_set_get(self):
        rst = RST()
        rst.set("r0", StripePair(4096, 65536))
        assert rst.get("r0") == StripePair(4096, 65536)

    def test_unknown_region_raises(self):
        with pytest.raises(RedirectionError):
            RST().get("nope")

    def test_contains_len(self):
        rst = RST()
        rst.set("a", StripePair(0, 4096))
        assert "a" in rst and "b" not in rst
        assert len(rst) == 1

    def test_overwrite(self):
        rst = RST()
        rst.set("a", StripePair(0, 4096))
        rst.set("a", StripePair(8192, 16384))
        assert rst.get("a").h == 8192

    def test_iteration_sorted(self):
        rst = RST()
        rst.set("b", StripePair(0, 4096))
        rst.set("a", StripePair(0, 8192))
        assert [name for name, _ in rst] == ["a", "b"]

    def test_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "rst.db"
        with RST(path) as rst:
            rst.set("region0", StripePair(12288, 98304))
            rst.set("region1", StripePair(0, 4096))
        with RST(path) as rst:
            assert rst.get("region0") == StripePair(12288, 98304)
            assert rst.get("region1") == StripePair(0, 4096)

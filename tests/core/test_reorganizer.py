"""Tests for the Data Reorganizer (regions + DRT construction)."""

import pytest

from repro.core import group_requests, reorganize
from repro.core.features import extract_features
from repro.exceptions import ConfigurationError
from repro.tracing import Trace, TraceRecord, burst_ids_of, concurrency_of


def rec(offset, size, ts=0.0, rank=0, op="write"):
    return TraceRecord(offset=offset, timestamp=ts, rank=rank, size=size, op=op)


def build(records, k=2, seed=0):
    trace = Trace(records).sorted_by_offset()
    features = extract_features(trace)
    grouping = group_requests(features, k=k, seed=seed)
    conc = concurrency_of(trace)
    bursts = burst_ids_of(trace)
    return trace, grouping, reorganize(trace, grouping, conc, bursts=bursts)


class TestRegions:
    def test_similar_requests_share_a_region(self):
        # alternate small/large over the file: two groups expected
        records = []
        for i in range(8):
            records.append(rec(i * 2000, 100, ts=float(i)))
            records.append(rec(i * 2000 + 1000, 900, ts=float(i)))
        _, grouping, plan = build(records, k=2)
        assert grouping.k == 2
        assert len(plan.regions) == 2
        sizes = sorted(r.size for r in plan.regions)
        assert sizes == [800, 7200]

    def test_regions_are_contiguous_packings(self):
        records = [rec(i * 500, 100, ts=float(i)) for i in range(6)]
        _, _, plan = build(records, k=1)
        region = plan.regions[0]
        # every request fragment lands inside [0, region.size)
        for rr in region.requests:
            assert 0 <= rr.offset < region.size
            assert rr.offset + rr.length <= region.size
        assert region.size == 600

    def test_drt_maps_every_accessed_byte(self):
        records = [rec(i * 300, 200, ts=float(i)) for i in range(5)]
        trace, _, plan = build(records, k=2)
        for record in trace:
            for e in plan.drt.translate(trace.files()[0], record.offset, record.size):
                assert e.mapped

    def test_duplicate_access_claims_once(self):
        records = [rec(0, 1000, ts=0.0), rec(0, 1000, ts=5.0)]
        _, _, plan = build(records, k=1)
        assert plan.migrated_bytes == 1000
        region = plan.regions[0]
        assert region.size == 1000
        assert len(region.requests) == 2  # both requests resolved

    def test_overlapping_requests_split_between_groups(self):
        # one large write over [0, 1000); small reads within it
        records = [
            rec(0, 1000, ts=0.0, op="write"),
            rec(200, 50, ts=10.0, op="read"),
            rec(600, 50, ts=20.0, op="read"),
        ]
        trace, grouping, plan = build(records, k=2)
        # small reads fully resolvable through the DRT
        for record in trace:
            ext = plan.drt.translate("file", record.offset, record.size)
            assert sum(e.length for e in ext) == record.size

    def test_request_arrays_shape(self):
        records = [rec(i * 100, 100, ts=float(i)) for i in range(4)]
        _, _, plan = build(records, k=1)
        offsets, lengths, is_read, conc, bursts = plan.regions[0].request_arrays()
        assert offsets.shape == lengths.shape == is_read.shape == conc.shape
        assert bursts.shape == offsets.shape
        assert (lengths == 100).all()
        assert not is_read.any()

    def test_burst_ids_carried(self):
        records = [rec(i * 100, 100, ts=0.0, rank=i) for i in range(4)]
        _, _, plan = build(records, k=1)
        _, _, _, _, bursts = plan.regions[0].request_arrays()
        assert len(set(bursts.tolist())) == 1  # one burst

    def test_untouched_bytes_stay_unmapped(self):
        records = [rec(0, 100), rec(1000, 100, ts=1.0)]
        _, _, plan = build(records, k=1)
        out = plan.drt.translate("file", 500, 100)
        assert len(out) == 1 and not out[0].mapped


class TestValidation:
    def test_label_count_mismatch(self):
        trace = Trace([rec(0, 100)])
        features = extract_features(Trace([rec(0, 100), rec(200, 100)]))
        grouping = group_requests(features, k=1)
        with pytest.raises(ConfigurationError):
            reorganize(trace, grouping, {})

    def test_multi_file_trace_rejected(self):
        records = [
            TraceRecord(offset=0, timestamp=0.0, rank=0, size=10, file="a"),
            TraceRecord(offset=0, timestamp=1.0, rank=0, size=10, file="b"),
        ]
        trace = Trace(records)
        features = extract_features(trace)
        grouping = group_requests(features, k=1)
        with pytest.raises(ConfigurationError):
            reorganize(trace, grouping, {})

"""Tests for feature extraction and Eq. 1 normalized distances."""

import numpy as np
import pytest

from repro.core import extract_features, normalized_distances
from repro.tracing import Trace, TraceRecord


def rec(offset, size, ts, rank=0):
    return TraceRecord(offset=offset, timestamp=ts, rank=rank, size=size)


class TestExtractFeatures:
    def test_size_and_concurrency_columns(self):
        t = Trace([rec(0, 100, 0.0), rec(200, 300, 0.0, rank=1)])
        fs = extract_features(t)
        assert fs.points.shape == (2, 2)
        assert list(fs.points[:, 0]) == [100, 300]
        assert list(fs.points[:, 1]) == [2, 2]  # same burst

    def test_phases_give_distinct_concurrency(self):
        t = Trace(
            [rec(0, 100, 0.0)]
            + [rec(100 * i, 100, 10.0, rank=i) for i in range(1, 5)]
        )
        fs = extract_features(t)
        assert fs.points[0, 1] == 1
        assert all(fs.points[i, 1] == 4 for i in range(1, 5))

    def test_empty_trace(self):
        fs = extract_features(Trace([]))
        assert len(fs) == 0
        assert list(fs.spread) == [1.0, 1.0]

    def test_constant_axis_spread_is_one(self):
        t = Trace([rec(0, 100, 0.0), rec(200, 100, 0.0, rank=1)])
        fs = extract_features(t)
        assert fs.spread[0] == 1.0  # constant size axis
        assert fs.spread[1] == 1.0  # constant concurrency axis

    def test_spread_is_max_minus_min(self):
        t = Trace([rec(0, 100, 0.0), rec(200, 500, 10.0)])
        fs = extract_features(t)
        assert fs.spread[0] == 400


class TestNormalizedDistances:
    def test_eq1_shape(self):
        t = Trace([rec(0, 100, 0.0), rec(200, 500, 10.0)])
        fs = extract_features(t)
        centers = np.array([[100.0, 1.0], [500.0, 1.0]])
        d = normalized_distances(fs, centers)
        assert d.shape == (2, 2)
        assert d[0, 0] == pytest.approx(0.0)
        assert d[1, 1] == pytest.approx(0.0)
        # normalization: the two points are exactly one size-spread apart
        assert d[0, 1] == pytest.approx(1.0)

    def test_normalization_balances_axes(self):
        # raw scales differ by 1000x but normalized distances match
        pts = np.array([[0.0, 0.0], [1000.0, 1.0]])
        from repro.core import FeatureSet
        from repro.core.features import _spread

        fs = FeatureSet(points=pts, spread=_spread(pts))
        d = normalized_distances(fs, np.array([[0.0, 0.0]]))
        assert d[1, 0] == pytest.approx(np.sqrt(2.0))

    def test_bad_center_shape(self):
        t = Trace([rec(0, 100, 0.0)])
        fs = extract_features(t)
        with pytest.raises(ValueError):
            normalized_distances(fs, np.zeros((2, 3)))

    def test_bad_points_shape(self):
        from repro.core import FeatureSet

        with pytest.raises(ValueError):
            FeatureSet(points=np.zeros((3, 3)), spread=np.ones(2))
        with pytest.raises(ValueError):
            FeatureSet(points=np.zeros((3, 2)), spread=np.ones(3))

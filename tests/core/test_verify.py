"""Tests for the plan auditor."""

import pytest

from repro.cluster import ClusterSpec
from repro.core import MHAPipeline, StripePair, verify_plan
from repro.tracing import Trace, TraceRecord
from repro.units import KiB
from repro.workloads import IORWorkload, LANLWorkload


@pytest.fixture
def spec():
    return ClusterSpec()


def plan_of(spec, trace, **kwargs):
    return MHAPipeline(spec, seed=0, **kwargs).plan(trace)


class TestCleanPlans:
    def test_ior_plan_verifies(self, spec):
        trace = IORWorkload(
            num_processes=8,
            request_sizes=[16 * KiB, 64 * KiB],
            total_size=4 * 1024 * KiB,
        ).trace("write")
        plan = plan_of(spec, trace)
        report = verify_plan(plan, trace)
        assert report.ok, str(report)
        assert report.stats["requests_checked"] == len(trace)
        assert report.stats["migrated_bytes"] == plan.migrated_bytes()

    def test_lanl_plan_verifies(self, spec):
        trace = LANLWorkload(num_processes=4, loops=8).trace("write")
        report = verify_plan(plan_of(spec, trace), trace)
        assert report.ok, str(report)

    def test_multi_file_plan_verifies(self, spec):
        from repro.workloads import LUWorkload

        trace = LUWorkload(num_processes=4, slabs=6).trace()
        report = verify_plan(plan_of(spec, trace), trace)
        assert report.ok, str(report)

    def test_report_str_mentions_ok(self, spec):
        trace = IORWorkload(num_processes=4, total_size=1024 * KiB).trace("write")
        report = verify_plan(plan_of(spec, trace), trace)
        assert "plan OK" in str(report)


class TestBrokenPlans:
    def _small_plan(self, spec):
        trace = Trace(
            [
                TraceRecord(offset=0, timestamp=0.0, rank=0, size=8 * KiB, op="write"),
                TraceRecord(
                    offset=32 * KiB, timestamp=5.0, rank=0, size=8 * KiB, op="write"
                ),
            ]
        )
        return plan_of(spec, trace, k=1), trace

    def test_missing_rst_entry_detected(self, spec):
        plan, trace = self._small_plan(spec)
        # sabotage: drop a region's stripe pair
        region = next(iter(plan.region_layouts))
        plan.rst._table.pop(region)
        report = verify_plan(plan, trace)
        assert not report.ok
        assert any("no RST stripe pair" in e for e in report.errors)

    def test_orphan_rst_entry_detected(self, spec):
        plan, trace = self._small_plan(spec)
        plan.rst.set("ghost.region9", StripePair(0, 4 * KiB))
        report = verify_plan(plan, trace)
        assert not report.ok
        assert any("never targets" in e for e in report.errors)

    def test_region_hole_detected(self, spec):
        plan, trace = self._small_plan(spec)
        # sabotage: grow the declared region size past its DRT coverage
        region_plan = next(iter(plan.reorder_plans.values())).regions[0]
        region_plan.size += 4 * KiB
        report = verify_plan(plan, trace)
        assert not report.ok
        assert any("holes or spill" in e for e in report.errors)

    def test_missing_layout_detected(self, spec):
        plan, trace = self._small_plan(spec)
        region = next(iter(plan.region_layouts))
        del plan.region_layouts[region]
        # keep the redirector's copy out of sync too
        plan.redirector._regions.pop(region, None)
        report = verify_plan(plan, trace)
        assert not report.ok

    def test_accounting_mismatch_detected(self, spec):
        plan, trace = self._small_plan(spec)
        next(iter(plan.reorder_plans.values())).migrated_bytes += 1
        report = verify_plan(plan, trace)
        assert not report.ok
        assert any("accounting mismatch" in e for e in report.errors)

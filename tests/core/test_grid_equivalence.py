"""Grid-engine equivalence: the vectorized RSSD search must be
*bit-identical* to the scalar Algorithm 2 loop.

The vectorized engine only reorganizes the same IEEE operations
(broadcast axes, exact integer kernels, order-preserving reductions),
so there is no tolerance anywhere in this file: winning pairs, costs,
per-candidate cost rows and per-server byte counts are compared with
``==`` / ``array_equal``.
"""

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import CostModelParams, determine_stripes
from repro.core.cost_model import (
    batch_costs,
    batch_costs_grid,
    burst_costs,
    burst_costs_grid,
)
from repro.exceptions import ConfigurationError
from repro.layouts.extents import (
    max_server_bytes_grid,
    per_server_bytes_batch,
    per_server_bytes_grid,
)

SPECS = [
    ClusterSpec(),
    ClusterSpec(num_hservers=3, num_sservers=3),
    ClusterSpec(num_sservers=0),
    ClusterSpec(num_hservers=0, num_sservers=2),
]


def random_region(rng, max_len=1 << 18):
    K = int(rng.integers(1, 48))
    offsets = rng.integers(0, 1 << 21, K)
    lengths = rng.integers(1, max_len, K)
    is_read = rng.random(K) < 0.5
    conc = rng.integers(1, 16, K)
    bursts = rng.integers(0, max(1, K // 3), K)
    return offsets, lengths, is_read, conc, bursts


def candidate_grid(rng, G=24):
    h = rng.integers(0, 64, G) * 4096
    s = np.maximum(rng.integers(1, 64, G) * 4096, h)
    return h, s


class TestKernelEquivalence:
    """The grid extent/cost kernels row-for-row against the scalar ones."""

    @pytest.mark.parametrize("spec", SPECS)
    def test_per_server_bytes_grid_matches_batch(self, spec):
        rng = np.random.default_rng(1)
        M, N = spec.num_hservers, spec.num_sservers
        for _ in range(5):
            offsets, lengths, _, _, _ = random_region(rng)
            h_arr, s_arr = candidate_grid(rng)
            hg, sg = per_server_bytes_grid(offsets, lengths, M, N, h_arr, s_arr)
            for g in range(h_arr.shape[0]):
                hb, sb = per_server_bytes_batch(
                    offsets, lengths, M, N, int(h_arr[g]), int(s_arr[g])
                )
                assert np.array_equal(hg[g], hb)
                assert np.array_equal(sg[g], sb)

    @pytest.mark.parametrize("spec", SPECS)
    def test_max_server_bytes_grid_is_fused_max(self, spec):
        rng = np.random.default_rng(2)
        M, N = spec.num_hservers, spec.num_sservers
        offsets, lengths, _, _, _ = random_region(rng)
        h_arr, s_arr = candidate_grid(rng)
        hg, sg = per_server_bytes_grid(offsets, lengths, M, N, h_arr, s_arr)
        hm, sm = max_server_bytes_grid(offsets, lengths, M, N, h_arr, s_arr)
        if M > 0:
            assert np.array_equal(hm, hg.max(axis=2))
        else:
            assert not hm.any()
        if N > 0:
            assert np.array_equal(sm, sg.max(axis=2))
        else:
            assert not sm.any()

    @pytest.mark.parametrize("spec", SPECS)
    def test_batch_costs_grid_rows_match_scalar(self, spec):
        rng = np.random.default_rng(3)
        params = CostModelParams.from_cluster(spec)
        for _ in range(3):
            offsets, lengths, is_read, conc, _ = random_region(rng)
            h_arr, s_arr = candidate_grid(rng)
            grid = batch_costs_grid(
                params, offsets, lengths, is_read, conc, h_arr, s_arr
            )
            for g in range(h_arr.shape[0]):
                row = batch_costs(
                    params, offsets, lengths, is_read, conc,
                    int(h_arr[g]), int(s_arr[g]),
                )
                assert np.array_equal(grid[g], row)

    @pytest.mark.parametrize("spec", SPECS)
    def test_burst_costs_grid_rows_match_scalar(self, spec):
        rng = np.random.default_rng(4)
        params = CostModelParams.from_cluster(spec)
        for _ in range(3):
            offsets, lengths, is_read, _, bursts = random_region(rng)
            h_arr, s_arr = candidate_grid(rng)
            grid = burst_costs_grid(
                params, offsets, lengths, is_read, bursts, h_arr, s_arr
            )
            for g in range(h_arr.shape[0]):
                row = burst_costs(
                    params, offsets, lengths, is_read, bursts,
                    int(h_arr[g]), int(s_arr[g]),
                )
                assert np.array_equal(grid[g], row)

    def test_zero_length_requests_cost_nothing_in_grid(self):
        params = CostModelParams.from_cluster(ClusterSpec())
        offsets = np.array([0, 4096])
        lengths = np.array([0, 8192])
        is_read = np.array([True, False])
        conc = np.array([4, 4])
        h_arr = np.array([4096, 8192])
        s_arr = np.array([8192, 8192])
        grid = batch_costs_grid(params, offsets, lengths, is_read, conc, h_arr, s_arr)
        assert (grid[:, 0] == 0).all()
        assert (grid[:, 1] > 0).all()

    def test_empty_grid_and_empty_requests(self):
        params = CostModelParams.from_cluster(ClusterSpec())
        none = np.array([], dtype=np.int64)
        out = batch_costs_grid(params, none, none, none.astype(bool), none, none, none)
        assert out.shape == (0, 0)
        out = burst_costs_grid(params, none, none, none.astype(bool), none, none, none)
        assert out.shape == (0, 0)


class TestSearchEquivalence:
    """Seeded property-style sweep: the two engines return the identical
    ``StripeDecision`` on random regions, in both cost modes."""

    @pytest.mark.parametrize("mode", ["batch", "burst"])
    def test_engines_agree_on_random_regions(self, mode):
        rng = np.random.default_rng(42)
        for trial in range(24):
            spec = SPECS[trial % len(SPECS)]
            params = CostModelParams.from_cluster(spec)
            offsets, lengths, is_read, conc, bursts = random_region(rng)
            kw = dict(
                step=4096,
                max_eval_requests=48,
                seed=trial,
                max_axis_candidates=16,
            )
            if mode == "burst":
                kw["burst_ids"] = bursts
            if trial % 5 == 0:
                kw["bound_policy"] = "average"
            if trial % 7 == 0:
                kw["allow_equal_stripes"] = False
            if trial % 11 == 0:
                kw["allow_h_zero"] = False
            a = determine_stripes(
                params, offsets, lengths, is_read, conc, engine="grid", **kw
            )
            b = determine_stripes(
                params, offsets, lengths, is_read, conc, engine="scalar", **kw
            )
            assert a.pair == b.pair, f"trial {trial}: {a.pair} != {b.pair}"
            assert a.cost == b.cost  # bit-identical, no approx
            assert a.candidates == b.candidates
            assert (a.bound_h, a.bound_s) == (b.bound_h, b.bound_s)

    def test_engines_agree_across_chunk_boundaries(self):
        """Chunked grid evaluation must not depend on the chunk size."""
        from repro.core import determinator

        params = CostModelParams.from_cluster(ClusterSpec())
        rng = np.random.default_rng(9)
        offsets, lengths, is_read, conc, _ = random_region(rng)
        baseline = determine_stripes(params, offsets, lengths, is_read, conc)
        original = determinator.GRID_CHUNK_ELEMS
        try:
            determinator.GRID_CHUNK_ELEMS = 1  # one candidate per chunk
            tiny = determine_stripes(params, offsets, lengths, is_read, conc)
        finally:
            determinator.GRID_CHUNK_ELEMS = original
        assert tiny.pair == baseline.pair
        assert tiny.cost == baseline.cost

    def test_unknown_engine_rejected(self):
        params = CostModelParams.from_cluster(ClusterSpec())
        with pytest.raises(ConfigurationError):
            determine_stripes(
                params,
                np.array([0]),
                np.array([4096]),
                np.array([True]),
                np.array([1]),
                engine="simd",
            )

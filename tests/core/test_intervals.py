"""Tests for the interval-set bookkeeping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IntervalSet

interval = st.tuples(
    st.integers(min_value=0, max_value=1000), st.integers(min_value=0, max_value=100)
).map(lambda t: (t[0], t[0] + t[1]))


class TestAdd:
    def test_first_add_returns_whole_gap(self):
        s = IntervalSet()
        assert s.add(10, 20) == [(10, 20)]

    def test_fully_covered_add_returns_nothing(self):
        s = IntervalSet()
        s.add(0, 100)
        assert s.add(10, 20) == []

    def test_partial_overlap(self):
        s = IntervalSet()
        s.add(0, 10)
        assert s.add(5, 15) == [(10, 15)]

    def test_gap_in_middle(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(20, 30)
        assert s.add(0, 30) == [(10, 20)]

    def test_adjacent_intervals_coalesce(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(10, 20)
        assert s.intervals() == [(0, 20)]

    def test_zero_length_add(self):
        s = IntervalSet()
        assert s.add(5, 5) == []
        assert len(s) == 0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            IntervalSet().gaps_in(10, 5)


class TestQueries:
    def test_covers(self):
        s = IntervalSet()
        s.add(0, 100)
        assert s.covers(10, 50)
        assert not s.covers(50, 150)

    def test_contains_point(self):
        s = IntervalSet()
        s.add(10, 20)
        assert 10 in s and 19 in s
        assert 9 not in s and 20 not in s

    def test_total(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(20, 25)
        assert s.total() == 15

    def test_gaps_in(self):
        s = IntervalSet()
        s.add(10, 20)
        s.add(30, 40)
        assert s.gaps_in(0, 50) == [(0, 10), (20, 30), (40, 50)]


class TestProperties:
    @given(st.lists(interval, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_matches_set_semantics(self, intervals):
        s = IntervalSet()
        shadow: set[int] = set()
        for start, end in intervals:
            gaps = s.add(start, end)
            gap_points = set()
            for g0, g1 in gaps:
                gap_points.update(range(g0, g1))
            # the reported gaps are exactly the new points
            assert gap_points == set(range(start, end)) - shadow
            shadow.update(range(start, end))
        assert s.total() == len(shadow)
        # disjoint + sorted invariants
        ivs = s.intervals()
        for (s1, e1), (s2, _e2) in zip(ivs, ivs[1:]):
            assert e1 < s2  # coalescing leaves no adjacency

    @given(st.lists(interval, max_size=20), interval)
    @settings(max_examples=100, deadline=None)
    def test_gaps_query_consistent(self, intervals, probe):
        s = IntervalSet()
        shadow: set[int] = set()
        for start, end in intervals:
            s.add(start, end)
            shadow.update(range(start, end))
        start, end = probe
        gap_points = set()
        for g0, g1 in s.gaps_in(start, end):
            gap_points.update(range(g0, g1))
        assert gap_points == set(range(start, end)) - shadow

"""Integration tests for the five-phase MHA pipeline."""

import pytest

from repro.cluster import ClusterSpec
from repro.core import MHAPipeline, OnlinePipeline
from repro.core.pipeline import identity_redirector
from repro.exceptions import ConfigurationError
from repro.layouts import check_tiling
from repro.tracing import Trace, TraceRecord
from repro.units import KiB


def rec(offset, size, ts, rank=0, op="write", file="f"):
    return TraceRecord(offset=offset, timestamp=ts, rank=rank, size=size, op=op, file=file)


def mixed_trace(loops=6, procs=4):
    """Alternating small/large phases, LANL-style."""
    records = []
    area = loops * (1 * KiB + 127 * KiB)
    for loop in range(loops):
        for rank in range(procs):
            base = rank * area + loop * 128 * KiB
            records.append(rec(base, 1 * KiB, ts=loop * 20.0, rank=rank))
            records.append(
                rec(base + 1 * KiB, 127 * KiB, ts=loop * 20.0 + 10.0, rank=rank)
            )
    return Trace(records)


@pytest.fixture
def spec():
    return ClusterSpec()


class TestPlan:
    def test_end_to_end_plan(self, spec):
        plan = MHAPipeline(spec, seed=1).plan(mixed_trace())
        assert plan.num_regions >= 2
        assert len(plan.drt) > 0
        assert len(plan.rst) == plan.num_regions
        assert plan.migrated_bytes() == mixed_trace().total_bytes() // 1  # claimed once
        assert "MHA plan" in plan.describe()

    def test_every_request_maps_and_tiles(self, spec):
        trace = mixed_trace()
        plan = MHAPipeline(spec, seed=1).plan(trace)
        for record in trace:
            frags = plan.redirector.map_request(record.file, record.offset, record.size)
            check_tiling(record.offset, record.size, frags)

    def test_grouping_separates_small_and_large(self, spec):
        plan = MHAPipeline(spec, seed=1).plan(mixed_trace())
        grouping = plan.groupings["f"]
        sizes = {round(c[0]) for c in grouping.centers}
        assert 1 * KiB in sizes and 127 * KiB in sizes

    def test_deterministic(self, spec):
        a = MHAPipeline(spec, seed=5).plan(mixed_trace())
        b = MHAPipeline(spec, seed=5).plan(mixed_trace())
        assert list(a.rst) == list(b.rst)

    def test_multi_file_trace(self, spec):
        records = []
        for f in ("a", "b"):
            for i in range(4):
                records.append(rec(i * 64 * KiB, 64 * KiB, ts=float(i), file=f))
        plan = MHAPipeline(spec, seed=0).plan(Trace(records))
        assert set(plan.reorder_plans) == {"a", "b"}
        for record in records:
            frags = plan.redirector.map_request(record.file, record.offset, record.size)
            check_tiling(record.offset, record.size, frags)

    def test_empty_trace(self, spec):
        plan = MHAPipeline(spec).plan(Trace([]))
        assert plan.num_regions == 0
        assert len(plan.drt) == 0

    def test_persistence(self, spec, tmp_path):
        pipeline = MHAPipeline(
            spec,
            seed=1,
            drt_path=tmp_path / "drt.db",
            rst_path=tmp_path / "rst.db",
        )
        plan = pipeline.plan(mixed_trace())
        n_entries, n_regions = len(plan.drt), len(plan.rst)
        plan.drt.close()
        plan.rst.close()
        from repro.core import DRT, RST

        with DRT(tmp_path / "drt.db") as drt, RST(tmp_path / "rst.db") as rst:
            assert len(drt) == n_entries
            assert len(rst) == n_regions

    def test_k_override(self, spec):
        plan = MHAPipeline(spec, k=1, seed=0).plan(mixed_trace())
        assert plan.groupings["f"].k == 1

    def test_invalid_k(self, spec):
        with pytest.raises(ConfigurationError):
            MHAPipeline(spec, k=0)

    def test_max_groups_cap(self, spec):
        plan = MHAPipeline(spec, max_groups=2, seed=0).plan(mixed_trace())
        assert plan.groupings["f"].k <= 2


class TestIdentityRedirector:
    def test_maps_back_to_original_offsets(self, spec):
        trace = mixed_trace(loops=2, procs=2)
        redirector = identity_redirector(spec, trace)
        for record in trace:
            frags = redirector.map_request(record.file, record.offset, record.size)
            check_tiling(record.offset, record.size, frags)
            assert all(f.obj == record.file for f in frags)

    def test_every_lookup_hits_the_drt(self, spec):
        trace = mixed_trace(loops=2, procs=2)
        redirector = identity_redirector(spec, trace)
        redirector.map_request("f", trace[0].offset, trace[0].size)
        assert redirector.stats.translated_extents >= 1
        assert redirector.stats.fallthrough_extents == 0


class TestOnlinePipeline:
    def test_replans_per_window(self, spec):
        online = OnlinePipeline(MHAPipeline(spec, seed=0), window=16)
        trace = mixed_trace(loops=4, procs=2)
        plans = 0
        for record in trace:
            if online.observe(record) is not None:
                plans += 1
        assert plans == len(trace) // 16
        assert online.replans == plans
        assert online.plan is not None

    def test_no_plan_before_first_window(self, spec):
        online = OnlinePipeline(MHAPipeline(spec, seed=0), window=100)
        assert online.observe(rec(0, 1024, 0.0)) is None
        assert online.plan is None

    def test_invalid_window(self, spec):
        with pytest.raises(ConfigurationError):
            OnlinePipeline(MHAPipeline(spec), window=0)

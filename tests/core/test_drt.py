"""Tests for the Data Reordering Table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DRT, DRTEntry, ENTRY_NUMERIC_BYTES
from repro.exceptions import RedirectionError


def entry(o_offset, length, r_offset, o_file="f", r_file="f.region0"):
    return DRTEntry(
        o_file=o_file, o_offset=o_offset, length=length, r_file=r_file, r_offset=r_offset
    )


class TestEntries:
    def test_o_end(self):
        assert entry(100, 50, 0).o_end == 150

    def test_zero_length_rejected(self):
        with pytest.raises(RedirectionError):
            entry(0, 0, 0)

    def test_negative_offset_rejected(self):
        with pytest.raises(RedirectionError):
            entry(-1, 10, 0)

    def test_overlapping_entries_rejected(self):
        drt = DRT()
        drt.add(entry(0, 100, 0))
        with pytest.raises(RedirectionError):
            drt.add(entry(50, 100, 200))

    def test_overlap_with_following_rejected(self):
        drt = DRT()
        drt.add(entry(100, 100, 0))
        with pytest.raises(RedirectionError):
            drt.add(entry(50, 100, 200))

    def test_adjacent_entries_allowed(self):
        drt = DRT()
        drt.add(entry(0, 100, 0))
        drt.add(entry(100, 100, 100))
        assert len(drt) == 2


class TestTranslate:
    def make(self):
        drt = DRT()
        drt.add(entry(0, 100, 1000, r_file="rA"))
        drt.add(entry(200, 100, 0, r_file="rB"))
        return drt

    def test_fully_mapped(self):
        drt = self.make()
        out = drt.translate("f", 10, 50)
        assert len(out) == 1
        e = out[0]
        assert e.mapped and e.file == "rA" and e.offset == 1010 and e.length == 50

    def test_unmapped_gap(self):
        drt = self.make()
        out = drt.translate("f", 100, 100)
        assert len(out) == 1
        assert not out[0].mapped and out[0].file == "f" and out[0].offset == 100

    def test_mixed_translation_tiles(self):
        drt = self.make()
        out = drt.translate("f", 50, 200)  # mapped, gap, mapped
        assert [e.mapped for e in out] == [True, False, True]
        cursor = 50
        for e in out:
            assert e.logical_offset == cursor
            cursor += e.length
        assert cursor == 250

    def test_unknown_file_falls_through(self):
        drt = self.make()
        out = drt.translate("other", 0, 10)
        assert len(out) == 1 and not out[0].mapped

    def test_zero_length(self):
        assert self.make().translate("f", 0, 0) == []

    def test_entry_at(self):
        drt = self.make()
        assert drt.entry_at("f", 50).r_file == "rA"
        assert drt.entry_at("f", 150) is None
        assert drt.entry_at("nope", 0) is None

    def test_numeric_bytes_sizing(self):
        drt = self.make()
        assert drt.numeric_bytes() == 2 * ENTRY_NUMERIC_BYTES

    def test_space_overhead_bound(self):
        """§V-E2: with 4 KB requests, one 24-byte entry per 4096 bytes
        is a ~0.6% metadata overhead."""
        assert ENTRY_NUMERIC_BYTES / 4096 == pytest.approx(0.006, abs=3e-4)


class TestHotEntryCache:
    def make(self):
        drt = DRT()
        drt.add(entry(0, 100, 1000, r_file="rA"))
        drt.add(entry(200, 100, 0, r_file="rB"))
        return drt

    def test_repeated_hits_count(self):
        drt = self.make()
        first = drt.translate("f", 10, 50)
        assert drt.cache_misses == 1 and drt.cache_hits == 0
        again = drt.translate("f", 20, 30)  # same hot entry covers it
        assert drt.cache_hits == 1 and drt.cache_misses == 1
        assert first[0].file == again[0].file == "rA"
        assert drt.cache_hit_rate == 0.5

    def test_miss_on_other_entry_then_hit(self):
        drt = self.make()
        drt.translate("f", 10, 10)
        drt.translate("f", 210, 10)  # different entry: miss, re-prime
        drt.translate("f", 220, 10)  # now hot: hit
        assert (drt.cache_hits, drt.cache_misses) == (1, 2)

    def test_walk_results_unchanged_by_cache(self):
        """Cached and cold translations must be byte-identical."""
        warm = self.make()
        probes = [(10, 50), (20, 30), (50, 200), (210, 10), (0, 300), (10, 50)]
        for offset, length in probes:
            cold = self.make()  # fresh table: probe always misses
            assert warm.translate("f", offset, length) == cold.translate(
                "f", offset, length
            )
        assert warm.cache_hits > 0

    def test_lru_list_serves_revisited_entries(self):
        """An entry served earlier stays on the LRU list: a later
        lookup starting exactly at it hits even after the hot slot
        moved to another entry."""
        drt = self.make()
        drt.translate("f", 10, 10)  # serves rA, hot = rA
        drt.translate("f", 210, 10)  # serves rB, hot = rB
        out = drt.translate("f", 0, 50)  # exact start of rA: LRU hit
        assert out[0].file == "rA"
        assert (drt.cache_hits, drt.cache_misses) == (1, 2)
        # and the hit re-primed the hot slot back to rA
        drt.translate("f", 50, 10)
        assert drt.cache_hits == 2

    def test_zero_length_does_not_touch_counters(self):
        drt = self.make()
        assert drt.translate("f", 0, 0) == []
        assert (drt.cache_hits, drt.cache_misses) == (0, 0)

    def test_entry_at_uses_cache(self):
        drt = self.make()
        assert drt.entry_at("f", 50).r_file == "rA"
        assert drt.entry_at("f", 60).r_file == "rA"
        assert (drt.cache_hits, drt.cache_misses) == (1, 1)

    def test_hit_rate_empty(self):
        assert DRT().cache_hit_rate == 0.0

    def test_translate_many_matches_sequential(self):
        batched, scalar = self.make(), self.make()
        offsets = [10, 20, 50, 210, 0, 10, 150]
        lengths = [50, 30, 200, 10, 300, 50, 20]
        got = batched.translate_many("f", offsets, lengths)
        want = [scalar.translate("f", o, l) for o, l in zip(offsets, lengths)]
        assert got == want
        # the per-record probe keeps counter parity with the scalar path
        assert (batched.cache_hits, batched.cache_misses) == (
            scalar.cache_hits,
            scalar.cache_misses,
        )

    def test_translate_many_unknown_file(self):
        drt = self.make()
        out = drt.translate_many("other", [0, 5], [10, 0])
        assert len(out) == 2
        assert not out[0][0].mapped
        assert out[1] == []


class TestPersistence:
    def test_reload(self, tmp_path):
        path = tmp_path / "drt.db"
        with DRT(path) as drt:
            drt.add(entry(0, 100, 500))
            drt.add(entry(300, 50, 0, r_file="rB"))
        with DRT(path) as drt:
            assert len(drt) == 2
            out = drt.translate("f", 0, 100)
            assert out[0].file == "f.region0" and out[0].offset == 500

    def test_iteration_sorted(self, tmp_path):
        drt = DRT()
        drt.add(entry(200, 10, 0))
        drt.add(entry(0, 10, 10))
        offsets = [e.o_offset for e in drt]
        assert offsets == [0, 200]

    @given(
        lengths=st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=20),
        probe=st.tuples(
            st.integers(min_value=0, max_value=1200),
            st.integers(min_value=0, max_value=300),
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_translation_tiles_and_roundtrips(self, lengths, probe):
        """Contiguous entries with shuffled targets: translate() tiles
        every probe extent and maps bytes consistently."""
        drt = DRT()
        cursor = 0
        byte_map = {}
        for i, length in enumerate(lengths):
            r_file = f"region{i % 3}"
            r_offset = 10_000 * i
            drt.add(entry(cursor, length, r_offset, r_file=r_file))
            for b in range(length):
                byte_map[cursor + b] = (r_file, r_offset + b)
            cursor += length
        start, length = probe
        out = drt.translate("f", start, length)
        pos = start
        for e in out:
            assert e.logical_offset == pos
            for b in range(e.length):
                logical = pos + b
                if logical in byte_map:
                    assert e.mapped
                    assert byte_map[logical] == (e.file, e.offset + b)
                else:
                    assert not e.mapped
            pos += e.length
        assert pos == start + length

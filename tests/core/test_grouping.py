"""Tests for Algorithm 1 (iterative request grouping)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FeatureSet, group_requests, suggest_k
from repro.core.features import _spread
from repro.exceptions import ConfigurationError


def features_from(points):
    pts = np.asarray(points, dtype=np.float64)
    return FeatureSet(points=pts, spread=_spread(pts))


class TestGroupRequests:
    def test_two_obvious_clusters(self):
        pts = [[16, 8]] * 5 + [[131072, 8]] * 5
        result = group_requests(features_from(pts), k=2, seed=0)
        assert result.k == 2
        labels = result.labels
        assert len(set(labels[:5])) == 1
        assert len(set(labels[5:])) == 1
        assert labels[0] != labels[5]

    def test_every_request_assigned(self):
        pts = np.random.default_rng(0).uniform(0, 1000, size=(40, 2))
        result = group_requests(features_from(pts), k=4, seed=1)
        assert result.labels.shape == (40,)
        assert set(result.labels) == set(range(result.k))

    def test_groups_nonempty(self):
        pts = np.random.default_rng(1).uniform(0, 100, size=(30, 2))
        result = group_requests(features_from(pts), k=8, seed=2)
        assert (result.group_sizes() > 0).all()

    def test_n_leq_k_gives_singleton_groups(self):
        pts = [[10, 1], [20, 2], [30, 3]]
        result = group_requests(features_from(pts), k=5, seed=0)
        assert result.k == 3
        assert sorted(result.labels) == [0, 1, 2]

    def test_iteration_cap_is_three(self):
        pts = np.random.default_rng(3).uniform(0, 1000, size=(200, 2))
        result = group_requests(features_from(pts), k=6, seed=0)
        assert result.iterations <= 3

    def test_deterministic_under_seed(self):
        pts = np.random.default_rng(4).uniform(0, 1000, size=(50, 2))
        a = group_requests(features_from(pts), k=4, seed=7)
        b = group_requests(features_from(pts), k=4, seed=7)
        assert (a.labels == b.labels).all()

    def test_empty_features(self):
        result = group_requests(features_from(np.zeros((0, 2))), k=3)
        assert result.k == 0 and len(result.labels) == 0

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            group_requests(features_from([[1, 1]]), k=0)

    def test_members(self):
        pts = [[1, 1]] * 3 + [[100, 100]] * 2
        result = group_requests(features_from(pts), k=2, seed=0)
        g_of_first = result.labels[0]
        assert set(result.members(g_of_first)) == {0, 1, 2}

    def test_normalization_matters(self):
        # sizes differ by 1000x, concurrency by 2x: without Eq. 1
        # normalization concurrency would be invisible
        pts = [[1000, 1], [1000, 100], [2000, 1], [2000, 100]]
        result = group_requests(features_from(pts), k=2, seed=0)
        # clusters split on one axis consistently, never mixing both
        assert result.k == 2

    @given(
        n=st.integers(min_value=1, max_value=60),
        k=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_invariants_hold_for_random_inputs(self, n, k, seed):
        pts = np.random.default_rng(seed).uniform(0, 1e6, size=(n, 2))
        result = group_requests(features_from(pts), k=k, seed=seed)
        assert result.labels.shape == (n,)
        assert result.k >= 1
        assert result.labels.max() < result.k
        assert (result.group_sizes() > 0).all()
        # centers inside the data bounding box (means of members)
        if n > k:
            lo, hi = pts.min(axis=0), pts.max(axis=0)
            assert (result.centers >= lo - 1e-9).all()
            assert (result.centers <= hi + 1e-9).all()


class TestSuggestK:
    def test_bounded_by_max_groups(self):
        assert suggest_k(1000, distinct_patterns=100, max_groups=16) == 16

    def test_bounded_by_distinct_patterns(self):
        assert suggest_k(1000, distinct_patterns=3, max_groups=16) == 3

    def test_bounded_by_request_count(self):
        assert suggest_k(2, distinct_patterns=10, max_groups=16) == 2

    def test_at_least_one(self):
        assert suggest_k(0, distinct_patterns=0) == 1
        assert suggest_k(5, distinct_patterns=0) == 1

    def test_invalid_max_groups(self):
        with pytest.raises(ConfigurationError):
            suggest_k(10, 5, max_groups=0)

"""Tests for trace persistence."""

import pytest

from repro.exceptions import TraceError
from repro.tracing import (
    Trace,
    TraceRecord,
    load_trace,
    load_trace_dir,
    save_trace,
    save_trace_per_rank,
)


def sample_trace():
    return Trace(
        [
            TraceRecord(
                offset=i * 1000,
                timestamp=float(i) / 3,
                rank=i % 3,
                pid=i % 3,
                fd=7,
                file="data.bin",
                op="write" if i % 2 else "read",
                size=512 + i,
            )
            for i in range(12)
        ]
    )


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.csv"
        save_trace(trace, path)
        assert load_trace(path) == trace

    def test_float_timestamps_exact(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.csv"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert [r.timestamp for r in loaded] == [r.timestamp for r in trace]

    def test_per_rank_split_and_merge(self, tmp_path):
        trace = sample_trace()
        paths = save_trace_per_rank(trace, tmp_path)
        assert len(paths) == 3  # ranks 0, 1, 2
        merged = load_trace_dir(tmp_path)
        assert merged == trace.sorted_by_offset()

    def test_empty_trace_roundtrip(self, tmp_path):
        path = tmp_path / "empty.csv"
        save_trace(Trace([]), path)
        assert len(load_trace(path)) == 0


class TestErrors:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("pid,rank,fd,file,op,offset,size,timestamp\n1,2\n")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_bad_value(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "pid,rank,fd,file,op,offset,size,timestamp\n"
            "0,0,0,f,read,NOT_A_NUMBER,10,0.0\n"
        )
        with pytest.raises(TraceError):
            load_trace(path)

    def test_empty_directory(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace_dir(tmp_path)

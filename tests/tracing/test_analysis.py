"""Tests for phase splitting, concurrency and burst analysis."""

import pytest

from repro.tracing import (
    Trace,
    TraceRecord,
    burst_clusters,
    burst_ids_of,
    concurrency_of,
    split_phases,
    trace_statistics,
)


def rec(offset, ts, rank=0, size=100, op="read"):
    return TraceRecord(offset=offset, timestamp=ts, rank=rank, size=size, op=op)


class TestSplitPhases:
    def test_single_phase(self):
        t = Trace([rec(0, 0.0), rec(100, 0.1), rec(200, 0.2)])
        phases = split_phases(t, gap=0.5)
        assert len(phases) == 1
        assert phases[0].concurrency == 3

    def test_gap_splits(self):
        t = Trace([rec(0, 0.0), rec(100, 10.0), rec(200, 10.1)])
        phases = split_phases(t, gap=0.5)
        assert [p.concurrency for p in phases] == [1, 2]

    def test_empty_trace(self):
        assert split_phases(Trace([])) == []

    def test_invalid_gap(self):
        with pytest.raises(ValueError):
            split_phases(Trace([]), gap=0)

    def test_distinct_ranks(self):
        t = Trace([rec(0, 0.0, rank=0), rec(100, 0.0, rank=1), rec(200, 0.1, rank=0)])
        assert split_phases(t)[0].distinct_ranks == 2


class TestConcurrency:
    def test_phase_concurrency(self):
        t = Trace([rec(i * 100, 0.0, rank=i) for i in range(4)])
        conc = concurrency_of(t)
        assert all(v == 4 for v in conc.values())

    def test_phases_isolated(self):
        t = Trace([rec(0, 0.0)] + [rec(i * 100, 10.0, rank=i) for i in range(1, 4)])
        conc = concurrency_of(t)
        assert conc[t[0]] == 1

    def test_spatial_clustering_splits_dense_parts(self):
        # two dense groups far apart with different sizes (Fig 9 shape)
        group_a = [rec(i * 100, 0.0, rank=i) for i in range(2)]
        base = 100 * 1024 * 1024
        group_b = [rec(base + i * 100, 0.0, rank=10 + i) for i in range(6)]
        t = Trace(group_a + group_b)
        conc = concurrency_of(t, spatial=True)
        assert conc[group_a[0]] == 2
        assert conc[group_b[0]] == 6

    def test_spatial_keeps_uniformly_spread_phase_together(self):
        # LANL shape: one request per distant process area
        t = Trace([rec(i * 10_000_000, 0.0, rank=i, size=128 * 1024) for i in range(8)])
        conc = concurrency_of(t, spatial=True)
        assert all(v == 8 for v in conc.values())

    def test_fixed_spatial_threshold(self):
        t = Trace([rec(0, 0.0), rec(10_000, 0.0, rank=1)])
        conc = concurrency_of(t, spatial=100)
        assert all(v == 1 for v in conc.values())
        conc = concurrency_of(t, spatial=1_000_000)
        assert all(v == 2 for v in conc.values())


class TestBurstIds:
    def test_ids_dense_and_grouped(self):
        t = Trace([rec(i * 100, float(i // 2) * 10, rank=i % 2) for i in range(6)])
        ids = burst_ids_of(t)
        assert sorted(set(ids.values())) == [0, 1, 2]

    def test_clusters_cover_trace(self):
        t = Trace([rec(i * 100, 0.0, rank=i) for i in range(5)])
        clusters = burst_clusters(t)
        assert sum(len(c) for c in clusters) == 5

    def test_ids_match_concurrency(self):
        t = Trace([rec(i * 100, float(i % 3), rank=i) for i in range(9)])
        ids = burst_ids_of(t, gap=0.5)
        conc = concurrency_of(t, gap=0.5)
        from collections import Counter

        sizes = Counter(ids.values())
        for record, burst in ids.items():
            assert conc[record] == sizes[burst]


class TestStatistics:
    def test_basic_stats(self):
        t = Trace(
            [
                rec(0, 0.0, size=100, op="read"),
                rec(100, 0.1, size=300, op="write", rank=1),
            ]
        )
        stats = trace_statistics(t)
        assert stats.count == 2
        assert stats.total_bytes == 400
        assert stats.read_fraction == 0.5
        assert stats.mean_size == 200
        assert stats.max_size == 300
        assert stats.min_size == 100
        assert stats.distinct_sizes == 2
        assert stats.distinct_ranks == 2

    def test_empty_stats(self):
        stats = trace_statistics(Trace([]))
        assert stats.count == 0 and stats.total_bytes == 0

"""Tests for the IOSIG-like collector."""

from repro.tracing import IOCollector


class TestIOCollector:
    def test_records_accumulate(self):
        c = IOCollector()
        c.record(rank=0, op="read", offset=0, size=100)
        c.record(rank=1, op="write", offset=100, size=200)
        assert len(c) == 2

    def test_trace_is_offset_sorted_by_default(self):
        c = IOCollector()
        c.record(rank=0, op="read", offset=500, size=10)
        c.record(rank=0, op="read", offset=100, size=10)
        offsets = [r.offset for r in c.trace()]
        assert offsets == [100, 500]

    def test_issue_order_preserved_when_requested(self):
        c = IOCollector()
        c.record(rank=0, op="read", offset=500, size=10)
        c.record(rank=0, op="read", offset=100, size=10)
        offsets = [r.offset for r in c.trace(sort_by_offset=False)]
        assert offsets == [500, 100]

    def test_auto_timestamps_monotone(self):
        c = IOCollector()
        r1 = c.record(rank=0, op="read", offset=0, size=1)
        r2 = c.record(rank=0, op="read", offset=1, size=1)
        assert r2.timestamp > r1.timestamp

    def test_custom_clock(self):
        time = [42.0]
        c = IOCollector(clock=lambda: time[0])
        r = c.record(rank=0, op="read", offset=0, size=1)
        assert r.timestamp == 42.0

    def test_explicit_timestamp_wins(self):
        c = IOCollector()
        r = c.record(rank=0, op="read", offset=0, size=1, timestamp=7.5)
        assert r.timestamp == 7.5

    def test_disabled_collector_drops_records(self):
        c = IOCollector()
        c.enabled = False
        c.record(rank=0, op="read", offset=0, size=1)
        assert len(c) == 0

    def test_pid_defaults_to_rank(self):
        c = IOCollector()
        r = c.record(rank=3, op="read", offset=0, size=1)
        assert r.pid == 3

    def test_clear(self):
        c = IOCollector()
        c.record(rank=0, op="read", offset=0, size=1)
        c.clear()
        assert len(c) == 0

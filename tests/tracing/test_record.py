"""Tests for trace records and the Trace container."""

import pytest

from repro.exceptions import TraceError
from repro.tracing import Trace, TraceRecord


def rec(offset=0, size=100, rank=0, op="read", ts=0.0, file="f"):
    return TraceRecord(
        offset=offset, timestamp=ts, rank=rank, op=op, size=size, file=file
    )


class TestTraceRecord:
    def test_end(self):
        assert rec(offset=10, size=5).end == 15

    def test_shifted(self):
        assert rec(offset=10).shifted(90).offset == 100

    def test_ordering_by_offset_first(self):
        assert rec(offset=5, ts=9.0) < rec(offset=6, ts=0.0)

    def test_invalid_offset(self):
        with pytest.raises(TraceError):
            rec(offset=-1)

    def test_invalid_size(self):
        with pytest.raises(TraceError):
            rec(size=0)

    def test_invalid_op(self):
        with pytest.raises(TraceError):
            rec(op="append")

    def test_invalid_timestamp(self):
        with pytest.raises(TraceError):
            rec(ts=-1.0)

    def test_hashable(self):
        assert len({rec(), rec()}) == 1


class TestTrace:
    def test_len_and_indexing(self):
        t = Trace([rec(offset=0), rec(offset=10)])
        assert len(t) == 2
        assert t[1].offset == 10

    def test_slicing_returns_trace(self):
        t = Trace([rec(offset=i * 10) for i in range(5)])
        assert isinstance(t[1:3], Trace)
        assert len(t[1:3]) == 2

    def test_sorted_by_offset(self):
        t = Trace([rec(offset=30), rec(offset=10), rec(offset=20)])
        assert [r.offset for r in t.sorted_by_offset()] == [10, 20, 30]

    def test_sorted_by_time(self):
        t = Trace([rec(ts=3.0), rec(ts=1.0, offset=10), rec(ts=2.0, offset=20)])
        assert [r.timestamp for r in t.sorted_by_time()] == [1.0, 2.0, 3.0]

    def test_files_first_appearance_order(self):
        t = Trace([rec(file="b"), rec(file="a", offset=10), rec(file="b", offset=20)])
        assert t.files() == ("b", "a")

    def test_for_file(self):
        t = Trace([rec(file="a"), rec(file="b", offset=10)])
        assert len(t.for_file("a")) == 1

    def test_ranks_sorted(self):
        t = Trace([rec(rank=3), rec(rank=1, offset=10)])
        assert t.ranks() == (1, 3)

    def test_total_bytes(self):
        t = Trace([rec(size=100), rec(size=200, offset=500)])
        assert t.total_bytes() == 300

    def test_extent(self):
        t = Trace([rec(offset=100, size=50), rec(offset=10, size=5)])
        assert t.extent() == (10, 150)

    def test_empty_extent(self):
        assert Trace([]).extent() == (0, 0)

    def test_max_size(self):
        t = Trace([rec(size=5), rec(size=500, offset=100)])
        assert t.max_size() == 500
        assert Trace([]).max_size() == 0

    def test_equality_and_hash(self):
        a = Trace([rec()])
        b = Trace([rec()])
        assert a == b and hash(a) == hash(b)

"""The columnar trace spine: container parity, twin equivalence, I/O.

The generated twin suites (``tests/contracts/test_twin_*``) already
police the registered ``@twin_of`` contracts; this module pins the
parts the generator does not reach — container semantics of
:class:`~repro.tracing.columnar.ColumnarTrace` against the record
``Trace``, the full ``sorted_by_time`` tie-break, text↔binary
round-trips at the edges (empty / single record), and record-vs-
columnar digest stability of the serve and chaos harnesses.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import extract_features, extract_features_columnar
from repro.tracing import (
    ColumnarTrace,
    Trace,
    TraceRecord,
    as_columnar_trace,
    load_trace,
    load_trace_mmap,
    save_trace,
    save_trace_columnar,
    split_phases_columnar,
)
from repro.tracing.analysis import burst_ids_of, concurrency_of, split_phases
from repro.units import KiB

# ---------------------------------------------------------------------------
# strategies: small traces with deliberate ties, duplicates, multi-file


def rec(offset=0, size=KiB, rank=0, op="read", ts=0.0, file="f"):
    return TraceRecord(
        offset=offset, timestamp=ts, rank=rank, op=op, size=size, file=file
    )


_raw_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=48),  # offset slot
        st.integers(min_value=1, max_value=8),  # size slots
        st.sampled_from([0.0, 0.25, 0.3, 1.0, 1.05, 5.0]),  # timestamp
        st.integers(min_value=0, max_value=3),  # rank
        st.sampled_from(["read", "write"]),
        st.sampled_from(["a", "b"]),
    ),
    min_size=0,
    max_size=16,
)


def build_traces(raw):
    records = [
        rec(offset=o * 16 * KiB, size=s * 16 * KiB, ts=ts, rank=rank, op=op, file=f)
        for o, s, ts, rank, op, f in raw
    ]
    trace = Trace(records)
    return trace, ColumnarTrace.from_trace(trace)


# ---------------------------------------------------------------------------
# container parity


class TestContainerParity:
    @given(_raw_rows)
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_and_summaries(self, raw):
        trace, col = build_traces(raw)
        assert col.to_trace() == trace
        assert len(col) == len(trace)
        assert col.files() == trace.files()
        assert col.ranks() == trace.ranks()
        assert col.total_bytes() == trace.total_bytes()
        assert col.extent() == trace.extent()
        assert col.max_size() == trace.max_size()
        assert list(col) == list(trace)

    @given(_raw_rows)
    @settings(max_examples=50, deadline=None)
    def test_sorted_orders_match_record_path(self, raw):
        trace, col = build_traces(raw)
        assert col.sorted_by_offset().to_trace() == trace.sorted_by_offset()
        assert col.sorted_by_time().to_trace() == trace.sorted_by_time()

    @given(_raw_rows)
    @settings(max_examples=50, deadline=None)
    def test_file_partition_matches_record_partition(self, raw):
        trace, col = build_traces(raw)
        record_parts = trace.partition_by_file()
        col_parts = col.file_partition()
        assert list(col_parts) == list(record_parts)
        for file, indices in col_parts.items():
            assert col.take(indices).to_trace() == record_parts[file]

    def test_from_columns_defaults(self):
        col = ColumnarTrace.from_columns(
            offsets=np.array([0, KiB]),
            timestamps=np.array([0.0, 1.0]),
            ranks=np.array([0, 1]),
            sizes=np.array([KiB, KiB]),
        )
        assert col.to_trace() == Trace(
            [
                rec(offset=0, ts=0.0, rank=0, file="file"),
                rec(offset=KiB, ts=1.0, rank=1, file="file"),
            ]
        )
        assert all(r.op == "read" for r in col)


class TestSortedByTimeTieBreak:
    """Satellite: ``sorted_by_time`` breaks timestamp ties on
    ``(rank, offset, size)`` — pinned here so the replay arrival order
    (and therefore every digest downstream) cannot silently drift."""

    def test_full_tie_break_record_path(self):
        records = [
            rec(ts=1.0, rank=1, offset=0, size=KiB),
            rec(ts=1.0, rank=0, offset=2 * KiB, size=KiB),
            rec(ts=1.0, rank=0, offset=0, size=2 * KiB),
            rec(ts=1.0, rank=0, offset=0, size=KiB),
            rec(ts=0.5, rank=9, offset=9 * KiB, size=KiB),
        ]
        ordered = list(Trace(records).sorted_by_time())
        assert [(r.timestamp, r.rank, r.offset, r.size) for r in ordered] == [
            (0.5, 9, 9 * KiB, KiB),
            (1.0, 0, 0, KiB),
            (1.0, 0, 0, 2 * KiB),
            (1.0, 0, 2 * KiB, KiB),
            (1.0, 1, 0, KiB),
        ]

    @given(_raw_rows)
    @settings(max_examples=50, deadline=None)
    def test_columnar_mirrors_record_tie_break(self, raw):
        trace, col = build_traces(raw)
        assert col.sorted_by_time().to_trace() == trace.sorted_by_time()


# ---------------------------------------------------------------------------
# analysis equivalence (direct suites, beyond the generated twin tests)

_gaps = st.sampled_from([0.3, 0.5, 2.0])
_spatials = st.sampled_from([False, True, 4 * 16 * KiB])


class TestAnalysisEquivalence:
    @given(_raw_rows, _gaps)
    @settings(max_examples=50, deadline=None)
    def test_split_phases(self, raw, gap):
        trace, col = build_traces(raw)
        ref = split_phases(trace, gap)
        slices = split_phases_columnar(col, gap)
        assert slices.n_phases == len(ref)
        for p, phase in enumerate(ref):
            assert slices.start_time(p) == phase.start_time
            assert slices.end_time(p) == phase.end_time
            got = col.take(slices.indices(p)).to_trace()
            assert tuple(got) == phase.records

    @given(_raw_rows, _gaps, _spatials)
    @settings(max_examples=50, deadline=None)
    def test_burst_ids_and_concurrency(self, raw, gap, spatial):
        from repro.tracing import burst_ids_columnar, concurrency_columnar

        trace, col = build_traces(raw)
        ref_conc = concurrency_of(trace, gap=gap, spatial=spatial)
        ref_ids = burst_ids_of(trace, gap=gap, spatial=spatial)
        got_conc = concurrency_columnar(col, gap=gap, spatial=spatial)
        got_ids = burst_ids_columnar(col, gap=gap, spatial=spatial)
        for i, record in enumerate(col):
            assert got_conc[i] == ref_conc[record]
            assert got_ids[i] == ref_ids[record]

    @given(_raw_rows, _gaps, _spatials)
    @settings(max_examples=50, deadline=None)
    def test_feature_matrix_bitwise(self, raw, gap, spatial):
        trace, col = build_traces(raw)
        ref = extract_features(trace, gap=gap, spatial=spatial)
        got = extract_features_columnar(col, gap=gap, spatial=spatial)
        assert got.points.tobytes() == ref.points.tobytes()
        assert np.asarray(got.spread).tobytes() == np.asarray(ref.spread).tobytes()


# ---------------------------------------------------------------------------
# text ↔ binary round-trip, including the edges


class TestTraceIO:
    @given(raw=_raw_rows)
    @settings(max_examples=25, deadline=None)
    def test_text_binary_agree(self, raw, tmp_path_factory):
        trace, col = build_traces(raw)
        out = tmp_path_factory.mktemp("colio")
        save_trace(trace, out / "t.trace")
        save_trace_columnar(col, out / "t.ctrace")
        loaded = load_trace_mmap(out / "t.ctrace")
        assert load_trace(out / "t.trace") == loaded.to_trace()

    def test_empty_trace(self, tmp_path):
        save_trace_columnar(Trace([]), tmp_path / "empty.ctrace")
        back = load_trace_mmap(tmp_path / "empty.ctrace")
        assert len(back) == 0
        assert back.to_trace() == Trace([])

    def test_single_record(self, tmp_path):
        trace = Trace([rec(offset=3 * KiB, size=KiB, ts=0.25, rank=2, op="write")])
        save_trace_columnar(trace, tmp_path / "one.ctrace")
        back = load_trace_mmap(tmp_path / "one.ctrace")
        assert back.to_trace() == trace
        assert back == as_columnar_trace(trace)

    def test_record_input_equals_columnar_input(self, tmp_path):
        trace, col = build_traces(
            [(0, 1, 0.0, 0, "read", "a"), (4, 2, 1.0, 1, "write", "b")]
        )
        save_trace_columnar(trace, tmp_path / "a.ctrace")
        save_trace_columnar(col, tmp_path / "b.ctrace")
        a = (tmp_path / "a.ctrace").read_bytes()
        assert a == (tmp_path / "b.ctrace").read_bytes()


# ---------------------------------------------------------------------------
# harness digest stability: record vs columnar replay


class TestDigestStability:
    def test_serve_digest_identical(self):
        from repro.tenancy import serve_scenario

        record = serve_scenario(tenants=8, max_active=4)
        columnar = serve_scenario(tenants=8, max_active=4, columnar=True)
        assert columnar.digest() == record.digest()

    def test_chaos_digest_identical(self):
        from repro.harness.chaos import chaos_experiment

        record = chaos_experiment(intensities=(0.5,), schemes=("DEF", "MHA"))
        columnar = chaos_experiment(
            intensities=(0.5,), schemes=("DEF", "MHA"), columnar=True
        )
        assert columnar.digest() == record.digest()

"""Tests for the discrete-event engine."""

import pytest

from repro.exceptions import SimulationError
from repro.simulate import AllOf, Completion, Simulator, Waitable


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_callbacks_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_is_fifo(self):
        sim = Simulator()
        fired = []
        for tag in range(5):
            sim.schedule(1.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 5]

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append(1))
        ev.cancel()
        sim.run()
        assert fired == []

    def test_scheduling_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_pending_counts_live_events(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        ev = sim.schedule(2.0, lambda: None)
        ev.cancel()
        assert sim.pending() == 1

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append(("first", sim.now))
            sim.schedule(1.0, lambda: fired.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == [("first", 1.0), ("second", 2.0)]


class TestWaitable:
    def test_fire_resumes_waiters_with_value(self):
        w = Waitable()
        got = []
        w.add_waiter(got.append)
        w.fire(42)
        assert got == [42]
        assert w.fired and w.value == 42

    def test_waiter_added_after_fire_runs_immediately(self):
        w = Waitable()
        w.fire("x")
        got = []
        w.add_waiter(got.append)
        assert got == ["x"]

    def test_double_fire_rejected(self):
        w = Waitable()
        w.fire()
        with pytest.raises(SimulationError):
            w.fire()


class TestAllOf:
    def test_fires_when_all_children_fire(self):
        a, b = Completion(), Completion()
        combo = AllOf([a, b])
        assert not combo.fired
        a.fire(1)
        assert not combo.fired
        b.fire(2)
        assert combo.fired
        assert combo.value == [1, 2]

    def test_empty_fires_immediately(self):
        assert AllOf([]).fired

    def test_prefired_children(self):
        a = Completion()
        a.fire("done")
        combo = AllOf([a])
        assert combo.fired and combo.value == ["done"]


class TestProcess:
    def test_process_sleeps(self):
        sim = Simulator()
        trail = []

        def prog():
            trail.append(sim.now)
            yield 1.5
            trail.append(sim.now)
            yield 0.5
            trail.append(sim.now)

        sim.spawn(prog())
        sim.run()
        assert trail == [0.0, 1.5, 2.0]

    def test_process_waits_on_completion(self):
        sim = Simulator()
        comp = Completion()
        got = []

        def prog():
            value = yield comp
            got.append((sim.now, value))

        sim.spawn(prog())
        sim.schedule(3.0, lambda: comp.fire("payload"))
        sim.run()
        assert got == [(3.0, "payload")]

    def test_process_done_carries_return_value(self):
        sim = Simulator()

        def prog():
            yield 1.0
            return "result"

        proc = sim.spawn(prog())
        sim.run()
        assert proc.done.fired and proc.done.value == "result"

    def test_negative_delay_rejected(self):
        sim = Simulator()

        def prog():
            yield -1.0

        with pytest.raises(SimulationError):
            sim.spawn(prog())
            sim.run()

    def test_bad_yield_type_rejected(self):
        sim = Simulator()

        def prog():
            yield "nonsense"

        with pytest.raises(SimulationError):
            sim.spawn(prog())

    def test_two_processes_interleave(self):
        sim = Simulator()
        trail = []

        def prog(name, delay):
            for _ in range(3):
                yield delay
                trail.append((name, sim.now))

        sim.spawn(prog("fast", 1.0))
        sim.spawn(prog("slow", 1.5))
        sim.run()
        # at t=3.0 both are due; "slow" scheduled its wakeup earlier
        # (at t=1.5 vs t=2.0), so FIFO order puts it first
        assert trail == [
            ("fast", 1.0),
            ("slow", 1.5),
            ("fast", 2.0),
            ("slow", 3.0),
            ("fast", 3.0),
            ("slow", 4.5),
        ]


class TestAdvanceTo:
    def test_advances_idle_clock(self):
        sim = Simulator()
        assert sim.advance_to(5.0) == 5.0
        assert sim.now == 5.0
        sim.advance_to(5.0)  # no-op move to the same instant is fine

    def test_backwards_rejected(self):
        sim = Simulator()
        sim.advance_to(5.0)
        with pytest.raises(SimulationError):
            sim.advance_to(4.0)

    def test_pending_events_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.advance_to(10.0)

    def test_cancelled_events_do_not_block(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        ev.cancel()
        assert sim.pending() == 0
        assert sim.advance_to(10.0) == 10.0

    def test_pending_drops_as_events_fire(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending() == 2
        sim.run()
        assert sim.pending() == 0

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert sim.pending() == 0

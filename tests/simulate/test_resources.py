"""Tests for FIFO resources (single- and multi-channel)."""

import pytest

from repro.simulate import FIFOResource, Simulator


def drain(sim):
    sim.run()


class TestSingleChannel:
    def test_back_to_back_service(self):
        sim = Simulator()
        res = FIFOResource(sim)
        c1 = res.submit(2.0)
        c2 = res.submit(3.0)
        drain(sim)
        assert c1.value.start == 0.0 and c1.value.finish == 2.0
        assert c2.value.start == 2.0 and c2.value.finish == 5.0

    def test_wait_time_recorded(self):
        sim = Simulator()
        res = FIFOResource(sim)
        res.submit(2.0)
        c2 = res.submit(1.0)
        drain(sim)
        assert c2.value.wait == 2.0

    def test_idle_resource_starts_immediately(self):
        sim = Simulator()
        res = FIFOResource(sim)
        sim.schedule(5.0, lambda: None)
        sim.run()
        c = res.submit(1.0)
        sim.run()
        assert c.value.start == 5.0

    def test_busy_time_accumulates(self):
        sim = Simulator()
        res = FIFOResource(sim)
        res.submit(2.0)
        res.submit(3.0)
        drain(sim)
        assert res.busy_time == 5.0
        assert res.served == 2

    def test_zero_duration_allowed(self):
        sim = Simulator()
        res = FIFOResource(sim)
        c = res.submit(0.0)
        drain(sim)
        assert c.value.finish == 0.0

    def test_negative_duration_rejected(self):
        res = FIFOResource(Simulator())
        with pytest.raises(ValueError):
            res.submit(-1.0)

    def test_utilization(self):
        sim = Simulator()
        res = FIFOResource(sim)
        res.submit(2.0)
        drain(sim)
        assert res.utilization(4.0) == pytest.approx(0.5)
        assert res.utilization(0.0) == 0.0

    def test_schedule_not_before(self):
        sim = Simulator()
        res = FIFOResource(sim)
        record, _ = res.schedule(1.0, not_before=10.0)
        assert record.start == 10.0 and record.finish == 11.0

    def test_records_kept_when_enabled(self):
        sim = Simulator()
        res = FIFOResource(sim)
        res.keep_records = True
        res.submit(1.0, tag="a")
        drain(sim)
        assert len(res.records) == 1 and res.records[0].tag == "a"


class TestMultiChannel:
    def test_parallel_channels_overlap(self):
        sim = Simulator()
        res = FIFOResource(sim, capacity=2)
        c1 = res.submit(2.0)
        c2 = res.submit(2.0)
        c3 = res.submit(2.0)
        drain(sim)
        assert c1.value.start == 0.0
        assert c2.value.start == 0.0  # second channel
        assert c3.value.start == 2.0  # queues behind the earliest free

    def test_busy_until_is_max_tail(self):
        sim = Simulator()
        res = FIFOResource(sim, capacity=2)
        res.submit(1.0)
        res.submit(5.0)
        assert res.busy_until == 5.0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FIFOResource(Simulator(), capacity=0)

    def test_k_channels_give_k_speedup_for_uniform_work(self):
        sim1, sim4 = Simulator(), Simulator()
        serial = FIFOResource(sim1, capacity=1)
        parallel = FIFOResource(sim4, capacity=4)
        for _ in range(8):
            serial.submit(1.0)
            parallel.submit(1.0)
        t_serial = sim1.run()
        t_parallel = sim4.run()
        assert t_serial == 8.0
        assert t_parallel == 2.0


class TestScheduleFlat:
    def test_matches_event_schedule(self):
        """schedule_flat returns the same finishes schedule produces."""
        durations = [2.0, 3.0, 0.5]
        sim_e = Simulator()
        res_e = FIFOResource(sim_e)
        finishes_e = []
        for d in durations:
            _, done = res_e.schedule(d)
            done.add_waiter(lambda _=None: finishes_e.append(sim_e.now))
        sim_e.run()
        sim_f = Simulator()
        res_f = FIFOResource(sim_f)
        finishes_f = [res_f.schedule_flat(0.0, d) for d in durations]
        assert finishes_f == finishes_e
        assert res_f.busy_time == res_e.busy_time
        assert res_f.served == res_e.served

    def test_not_before_and_now_floor_the_start(self):
        sim = Simulator()
        res = FIFOResource(sim)
        assert res.schedule_flat(1.0, 2.0) == 3.0  # starts at now
        assert res.schedule_flat(1.0, 1.0, not_before=10.0) == 11.0
        assert res.schedule_flat(1.0, 1.0) == 12.0  # queued behind the tail

    def test_multichannel_picks_earliest_tail(self):
        sim = Simulator()
        res = FIFOResource(sim, capacity=2)
        assert res.schedule_flat(0.0, 4.0) == 4.0
        assert res.schedule_flat(0.0, 1.0) == 1.0  # second channel is free
        assert res.schedule_flat(0.0, 1.0) == 2.0  # behind the shorter tail

    def test_negative_duration_rejected(self):
        sim = Simulator()
        res = FIFOResource(sim)
        with pytest.raises(ValueError):
            res.schedule_flat(0.0, -1.0)

    def test_records_kept_when_enabled(self):
        sim = Simulator()
        res = FIFOResource(sim)
        res.keep_records = True
        res.schedule_flat(0.0, 2.0, tag="a")
        res.schedule_flat(1.0, 3.0, tag="b")
        assert [(r.start, r.finish, r.tag) for r in res.records] == [
            (0.0, 2.0, "a"),
            (2.0, 5.0, "b"),
        ]

"""Cross-validation: the cost model against the discrete-event simulator.

DESIGN.md's calibration section claims the cost model's coefficients
are *exactly* the simulator's service-time coefficients.  These tests
prove it where the claim is exact (single requests, deterministic
bursts) and bound it where the model deliberately aggregates.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec
from repro.core import CostModelParams, request_cost
from repro.core.cost_model import burst_costs
from repro.layouts import VariedStripeLayout
from repro.pfs import HybridPFS
from repro.schemes.base import LayoutView
from repro.units import KiB


@pytest.fixture(scope="module")
def spec():
    return ClusterSpec()


def simulate_one(spec, layout, op, offset, length):
    """Simulated completion time of a single isolated request."""
    pfs = HybridPFS(spec)
    done = pfs.issue(op, layout.map_extent(offset, length))
    pfs.sim.run()
    return pfs.sim.now


class TestSingleRequestExactness:
    @given(
        h=st.sampled_from([0, 4 * KiB, 16 * KiB, 64 * KiB]),
        s_extra=st.sampled_from([4 * KiB, 16 * KiB, 64 * KiB, 128 * KiB]),
        length=st.integers(min_value=1, max_value=512 * KiB),
        offset_units=st.integers(min_value=0, max_value=64),
        op=st.sampled_from(["read", "write"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_model_equals_simulator_for_isolated_requests(
        self, h, s_extra, length, offset_units, op
    ):
        """For one request on an idle system, Eq. 2 with the cluster's
        parameters must equal the simulated completion time exactly."""
        spec = ClusterSpec()
        s = h + s_extra
        offset = offset_units * 4 * KiB
        layout = VariedStripeLayout(
            spec.hserver_ids, spec.sserver_ids, h=h, s=s, obj="f"
        )
        params = CostModelParams.from_cluster(spec)
        predicted = request_cost(params, op, offset, length, h, s)
        simulated = simulate_one(spec, layout, op, offset, length)
        assert simulated == pytest.approx(predicted, rel=1e-9)

    def test_read_write_asymmetry_matches(self, spec):
        layout = VariedStripeLayout(
            spec.hserver_ids, spec.sserver_ids, h=0, s=64 * KiB, obj="f"
        )
        params = CostModelParams.from_cluster(spec)
        for op in ("read", "write"):
            predicted = request_cost(params, op, 0, 64 * KiB, 0, 64 * KiB)
            simulated = simulate_one(spec, layout, op, 0, 64 * KiB)
            assert simulated == pytest.approx(predicted, rel=1e-9)


class TestBurstAccuracy:
    def _simulate_burst(self, spec, layout, offsets, length, op="write"):
        """All requests issued simultaneously; time until the last ends."""
        pfs = HybridPFS(spec)
        completions = [
            pfs.issue(op, layout.map_extent(o, length)) for o in offsets
        ]
        pfs.sim.run()
        assert all(c.fired for c in completions)
        return pfs.sim.now

    @given(
        h=st.sampled_from([0, 16 * KiB, 64 * KiB]),
        s_extra=st.sampled_from([16 * KiB, 64 * KiB]),
        count=st.integers(min_value=1, max_value=12),
        length=st.sampled_from([16 * KiB, 128 * KiB, 256 * KiB]),
    )
    @settings(max_examples=40, deadline=None)
    def test_burst_model_bounds_simulated_makespan(
        self, h, s_extra, count, length
    ):
        """The exact-burst cost is a lower bound on the simulated burst
        makespan (FIFO ordering effects can only add), and within 2x
        (the per-server max() underestimates at most the cross-server
        serialization the simulator resolves)."""
        spec = ClusterSpec()
        s = h + s_extra
        layout = VariedStripeLayout(
            spec.hserver_ids, spec.sserver_ids, h=h, s=s, obj="f"
        )
        params = CostModelParams.from_cluster(spec)
        offsets = np.arange(count, dtype=np.int64) * length
        predicted = burst_costs(
            params,
            offsets,
            np.full(count, length, dtype=np.int64),
            np.zeros(count, dtype=bool),
            np.zeros(count, dtype=np.int64),  # one shared burst id
            h,
            s,
        )[0]
        simulated = self._simulate_burst(spec, layout, offsets.tolist(), length)
        assert predicted <= simulated * (1 + 1e-9)
        assert simulated <= 2.0 * predicted

    def test_tiled_burst_is_tight(self, spec):
        """For a stripe-aligned tiled burst, model == simulator."""
        h, s = 64 * KiB, 64 * KiB
        length = 64 * KiB
        count = 8  # one request per server, no queueing at all
        layout = VariedStripeLayout(
            spec.hserver_ids, spec.sserver_ids, h=h, s=s, obj="f"
        )
        params = CostModelParams.from_cluster(spec)
        offsets = np.arange(count, dtype=np.int64) * length
        predicted = burst_costs(
            params,
            offsets,
            np.full(count, length, dtype=np.int64),
            np.zeros(count, dtype=bool),
            np.zeros(count, dtype=np.int64),
            h,
            s,
        )[0]
        simulated = self._simulate_burst(spec, layout, offsets.tolist(), length)
        assert simulated == pytest.approx(predicted, rel=1e-9)


class TestSchemeOptimalityAgainstSimulator:
    def test_rssd_choice_is_simulator_competitive(self, spec):
        """The stripe pair RSSD picks must be within 10% of the best
        pair on a coarse simulator grid — the model's decisions
        transfer to the ground truth."""
        from repro.core import determine_stripes

        length = 128 * KiB
        count = 16
        conc = 8
        params = CostModelParams.from_cluster(spec)
        offsets = np.arange(count, dtype=np.int64) * length
        lengths = np.full(count, length, dtype=np.int64)
        bursts = np.repeat(np.arange(count // conc), conc)
        decision = determine_stripes(
            params, offsets, lengths,
            np.zeros(count, dtype=bool),
            np.full(count, conc, dtype=np.int64),
            burst_ids=bursts,
        )

        def simulate_pair(h, s):
            layout = VariedStripeLayout(
                spec.hserver_ids, spec.sserver_ids, h=h, s=s, obj="f"
            )
            view = LayoutView({"f": layout})
            from repro.pfs import run_workload
            from repro.tracing import Trace, TraceRecord

            records = [
                TraceRecord(
                    offset=int(o), timestamp=float(i // conc) * 10,
                    rank=i % conc, size=length, op="write", file="f",
                )
                for i, o in enumerate(offsets)
            ]
            return run_workload(spec, view, Trace(records)).makespan

        chosen = simulate_pair(decision.h, decision.s)
        grid = [
            (0, 32 * KiB), (0, 128 * KiB), (16 * KiB, 64 * KiB),
            (32 * KiB, 96 * KiB), (64 * KiB, 128 * KiB), (128 * KiB, 128 * KiB),
        ]
        best = min(simulate_pair(h, s) for h, s in grid)
        assert chosen <= 1.10 * best

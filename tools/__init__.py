"""Repository tooling (not part of the installable ``repro`` package)."""

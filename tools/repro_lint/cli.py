"""Command-line entry point: ``python -m tools.repro_lint src tests``.

Exit codes: 0 = clean, 1 = diagnostics found, 2 = usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .engine import lint_paths
from .registry import all_checkers


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Domain-specific static analysis for the MHA reproduction: "
            "determinism, units discipline, parallel safety, cost-model "
            "purity, float equality."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (e.g. RL001,RL004)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for checker in all_checkers():
            print(f"{checker.rule}  {checker.name}: {checker.description}")
        return 0

    paths = list(args.paths) or ["src", "tests"]
    select = None
    if args.select:
        select = [rule.strip() for rule in args.select.split(",") if rule.strip()]
    try:
        diagnostics = lint_paths(paths, select=select)
    except FileNotFoundError as exc:
        print(f"repro-lint: no such file or directory: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
        return 2

    for diag in diagnostics:
        print(diag.render())
    if diagnostics:
        count = len(diagnostics)
        plural = "s" if count != 1 else ""
        print(f"repro-lint: {count} finding{plural}", file=sys.stderr)
        return 1
    return 0

"""Command-line entry point: ``python -m tools.repro_lint src tests``.

Subcommand ``gen-twin-tests`` renders the differential twin suites
(see :mod:`tools.repro_lint.gen_twin_tests`); ``sanitize-report`` diffs
two runtime seed-lineage ledgers (see :mod:`tools.repro_lint.sanitize`);
``effects <module:qualname>`` prints the inferred effect summary and
per-effect witness call chains (see :mod:`tools.repro_lint.callgraph`);
everything else lints.

Exit codes: 0 = clean, 1 = diagnostics found, 2 = usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .engine import lint_paths
from .output import FORMATS, render
from .registry import all_checkers


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Domain-specific static analysis for the MHA reproduction: "
            "determinism, units discipline, parallel safety, cost-model "
            "purity, float equality, twin contracts."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (e.g. RL001,RL004)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        help="diagnostic output format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write diagnostics to FILE instead of stdout",
    )
    return parser


def _effects_main(argv: Sequence[str]) -> int:
    """``effects <module:qualname>`` — explain one function's summary."""
    if len(argv) != 1 or argv[0] in ("-h", "--help"):
        print(
            "usage: python -m tools.repro_lint effects <module:qualname>",
            file=sys.stderr,
        )
        return 0 if argv and argv[0] in ("-h", "--help") else 2
    spec = argv[0]
    if ":" not in spec:
        print(
            f"repro-lint: {spec!r} is not a module:qualname spec",
            file=sys.stderr,
        )
        return 2
    from .callgraph import graph_for_spec

    graph, error = graph_for_spec(spec)
    if error is not None:
        print(f"repro-lint: {error}", file=sys.stderr)
        return 2
    if graph.node(spec) is None:
        module = spec.partition(":")[0]
        print(
            f"repro-lint: no function {spec!r} (module {module} parsed "
            f"fine; check the qualname)",
            file=sys.stderr,
        )
        return 2
    try:
        print(graph.explain(spec))
    except BrokenPipeError:  # piped into head/less that exited early
        sys.stderr.close()  # suppress the interpreter's flush warning
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "gen-twin-tests":
        from .gen_twin_tests import main as gen_main

        return gen_main(argv[1:])
    if argv and argv[0] == "sanitize-report":
        from .sanitize import main as sanitize_main

        return sanitize_main(argv[1:])
    if argv and argv[0] == "effects":
        return _effects_main(argv[1:])

    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for checker in all_checkers():
            module = type(checker).__module__.rpartition(".")[2]
            print(
                f"{checker.rule}  {checker.name}  [checkers.{module}]: "
                f"{checker.description}"
            )
        return 0

    paths = list(args.paths) or ["src", "tests"]
    select = None
    if args.select:
        select = [rule.strip() for rule in args.select.split(",") if rule.strip()]
    try:
        diagnostics = lint_paths(paths, select=select)
    except FileNotFoundError as exc:
        print(f"repro-lint: no such file or directory: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
        return 2

    rendered = render(diagnostics, args.format)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    elif rendered:
        print(rendered)
    if diagnostics:
        count = len(diagnostics)
        plural = "s" if count != 1 else ""
        print(f"repro-lint: {count} finding{plural}", file=sys.stderr)
        return 1
    return 0

"""``# repro-lint: disable=<rule>[,<rule>...]`` suppression comments.

Suppressions are *scoped and explicit*: a comment silences only the
named rules, and only where it sits.  A comment inside an open logical
line — a multi-line call, a parenthesized decorator, an implicitly
continued expression — silences the *whole statement's* physical line
range, so a diagnostic anchored at the statement's first line can be
suppressed by a comment next to the offending argument (and vice
versa).  A comment on a line of its own stays line-specific, and
``disable-file=`` covers the whole file.  Comments are located with
:mod:`tokenize` so string literals that merely *contain* the marker
text are never mistaken for suppressions, and logical-line extents come
from the NEWLINE/NL token distinction rather than bracket counting.
"""

from __future__ import annotations

import io
import re
import tokenize

_DISABLE_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Z]{2}[0-9]{3}(?:\s*,\s*[A-Z]{2}[0-9]{3})*)"
)

#: tokens that neither end a logical line nor start one
_NON_CODE_TOKENS = frozenset(
    {
        tokenize.NL,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENCODING,
        tokenize.ENDMARKER,
    }
)


class SuppressionIndex:
    """Per-file map of suppressed rules, by line and file-wide."""

    def __init__(self) -> None:
        self._by_line: dict[int, set[str]] = {}
        self._file_wide: set[str] = set()

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        """Collect every suppression comment in ``source``.

        Unparseable sources yield an empty index — the engine reports
        the syntax error separately, and suppressions in a broken file
        are moot.
        """
        index = cls()
        #: first physical line of the logical line currently open, if any
        logical_start: int | None = None
        #: rules from disable= comments seen inside the open logical line
        pending: set[str] = set()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for tok in tokens:
                if tok.type == tokenize.COMMENT:
                    match = _DISABLE_RE.search(tok.string)
                    if match is None:
                        continue
                    rules = {r.strip() for r in match.group("rules").split(",")}
                    if match.group("scope") == "disable-file":
                        index._file_wide |= rules
                    elif logical_start is None:
                        # a comment on its own line is line-specific
                        index._add(tok.start[0], tok.start[0], rules)
                    else:
                        pending |= rules
                elif tok.type == tokenize.NEWLINE:
                    # a logical line just ended: apply its suppressions
                    # across every physical line it spanned
                    if pending and logical_start is not None:
                        index._add(logical_start, tok.start[0], pending)
                    pending = set()
                    logical_start = None
                elif tok.type in _NON_CODE_TOKENS:
                    continue
                elif logical_start is None:
                    logical_start = tok.start[0]
        except (tokenize.TokenError, IndentationError, SyntaxError):
            pass
        return index

    def _add(self, first_line: int, last_line: int, rules: set[str]) -> None:
        for line in range(first_line, last_line + 1):
            self._by_line.setdefault(line, set()).update(rules)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is silenced on ``line``."""
        if rule in self._file_wide:
            return True
        return rule in self._by_line.get(line, set())

    def __len__(self) -> int:
        return len(self._file_wide) + sum(len(v) for v in self._by_line.values())

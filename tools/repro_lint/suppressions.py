"""``# repro-lint: disable=<rule>[,<rule>...]`` suppression comments.

Suppressions are *scoped and explicit*: a comment silences only the
named rules, only on its own physical line (or, with ``disable-file=``,
across the whole file).  Comments are located with :mod:`tokenize` so
string literals that merely *contain* the marker text are never
mistaken for suppressions.
"""

from __future__ import annotations

import io
import re
import tokenize

_DISABLE_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Z]{2}[0-9]{3}(?:\s*,\s*[A-Z]{2}[0-9]{3})*)"
)


class SuppressionIndex:
    """Per-file map of suppressed rules, by line and file-wide."""

    def __init__(self) -> None:
        self._by_line: dict[int, set[str]] = {}
        self._file_wide: set[str] = set()

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        """Collect every suppression comment in ``source``.

        Unparseable sources yield an empty index — the engine reports
        the syntax error separately, and suppressions in a broken file
        are moot.
        """
        index = cls()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                match = _DISABLE_RE.search(tok.string)
                if match is None:
                    continue
                rules = {r.strip() for r in match.group("rules").split(",")}
                if match.group("scope") == "disable-file":
                    index._file_wide |= rules
                else:
                    index._by_line.setdefault(tok.start[0], set()).update(rules)
        except (tokenize.TokenError, IndentationError, SyntaxError):
            pass
        return index

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is silenced on ``line``."""
        if rule in self._file_wide:
            return True
        return rule in self._by_line.get(line, set())

    def __len__(self) -> int:
        return len(self._file_wide) + sum(len(v) for v in self._by_line.values())

"""Diagnostic records emitted by repro-lint checkers.

A diagnostic pins one rule violation to an exact file/line/column so it
can be jumped to from a terminal, sorted deterministically, and matched
against same-line ``# repro-lint: disable=`` suppressions.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One rule violation at a precise source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """``path:line:col: RULE message`` — the CLI's output format."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

"""Diagnostic serializers: plain text, JSON, and SARIF 2.1.0.

SARIF is the interchange format GitHub code scanning ingests, so CI can
upload repro-lint findings as inline pull-request annotations; JSON is
a stable machine-readable form for ad-hoc tooling.  Columns are
0-based internally (matching ``ast``) and converted to SARIF's 1-based
convention at the boundary.
"""

from __future__ import annotations

import json
from typing import Sequence

from .diagnostics import Diagnostic
from .registry import all_checkers

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

FORMATS = ("text", "json", "sarif")


def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    return "\n".join(diag.render() for diag in diagnostics)


def render_json(diagnostics: Sequence[Diagnostic]) -> str:
    return json.dumps(
        [
            {
                "path": d.path,
                "line": d.line,
                "col": d.col,
                "rule": d.rule,
                "message": d.message,
            }
            for d in diagnostics
        ],
        indent=2,
    )


def render_sarif(diagnostics: Sequence[Diagnostic]) -> str:
    rules = [
        {
            "id": checker.rule,
            "name": checker.name,
            "shortDescription": {"text": checker.description},
        }
        for checker in all_checkers()
    ]
    results = [
        {
            "ruleId": d.rule,
            "level": "error",
            "message": {"text": d.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": d.path.replace("\\", "/"),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": d.line,
                            "startColumn": d.col + 1,
                        },
                    }
                }
            ],
        }
        for d in diagnostics
    ]
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/static-analysis.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2)


def render(diagnostics: Sequence[Diagnostic], fmt: str) -> str:
    if fmt == "text":
        return render_text(diagnostics)
    if fmt == "json":
        return render_json(diagnostics)
    if fmt == "sarif":
        return render_sarif(diagnostics)
    raise ValueError(f"unknown output format {fmt!r}")

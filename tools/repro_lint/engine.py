"""File discovery, parsing, and checker dispatch.

The engine walks the requested roots, parses each ``*.py`` once into a
shared :class:`FileContext` (AST + source + suppression index + scope
flags), and funnels it through every applicable checker.  Diagnostics on
suppressed lines are dropped here, centrally, so individual checkers
never deal with suppressions.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .diagnostics import Diagnostic
from .registry import Checker, ProjectChecker, all_checkers
from .suppressions import SuppressionIndex

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}


@dataclass
class FileContext:
    """Everything checkers need to know about one source file."""

    #: path as shown in diagnostics (relative to the lint root when possible)
    display_path: str
    #: source text
    source: str
    #: parsed module
    tree: ast.Module
    #: suppression comments found in the file
    suppressions: SuppressionIndex
    #: ``/``-separated path used for scope decisions, e.g. ``src/repro/core/placer.py``
    posix_path: str = ""
    #: scratch space shared between a checker's visitors (per file)
    cache: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.posix_path:
            self.posix_path = self.display_path.replace(os.sep, "/")

    @property
    def is_test(self) -> bool:
        """Test code gets looser rules (RL002/RL005 skip it)."""
        parts = self.posix_path.split("/")
        name = parts[-1]
        return (
            "tests" in parts
            or name.startswith("test_")
            or name.endswith("_test.py")
            or name == "conftest.py"
        )

    def in_dir(self, *fragments: str) -> bool:
        """Whether the file lives under any of the given directory names."""
        parts = set(self.posix_path.split("/")[:-1])
        return any(fragment in parts for fragment in fragments)


def iter_python_files(paths: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``*.py`` paths.

    Paths are normalized to absolute form before deduplication, so
    overlapping or differently spelled arguments (``src src/repro``,
    ``./src src``, an absolute and a relative spelling of the same
    tree) contribute each file exactly once.
    """
    found: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                found.add(os.path.normpath(os.path.abspath(path)))
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d
                    for d in dirnames
                    if d not in _SKIP_DIRS and not d.endswith(".egg-info")
                )
                for filename in filenames:
                    if filename.endswith(".py"):
                        found.add(
                            os.path.normpath(
                                os.path.abspath(os.path.join(dirpath, filename))
                            )
                        )
        else:
            raise FileNotFoundError(path)
    return sorted(found)


def make_context(source: str, display_path: str) -> FileContext:
    """Parse ``source`` into a :class:`FileContext`.

    Raises :class:`SyntaxError` if the source does not parse; the caller
    turns that into a diagnostic.
    """
    tree = ast.parse(source, filename=display_path)
    return FileContext(
        display_path=display_path,
        source=source,
        tree=tree,
        suppressions=SuppressionIndex.from_source(source),
    )


def _syntax_error_diag(display_path: str, exc: SyntaxError) -> Diagnostic:
    return Diagnostic(
        path=display_path,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        rule="RL000",
        message=f"syntax error: {exc.msg}",
    )


def _split_checkers(
    checkers: Sequence[Checker],
) -> tuple[list[Checker], list[ProjectChecker]]:
    per_file = [c for c in checkers if not isinstance(c, ProjectChecker)]
    project = [c for c in checkers if isinstance(c, ProjectChecker)]
    return per_file, project


def _check_file(ctx: FileContext, checkers: Sequence[Checker]) -> list[Diagnostic]:
    return [
        diag
        for checker in checkers
        if checker.applies_to(ctx)
        for diag in checker.check(ctx)
        if not ctx.suppressions.is_suppressed(diag.rule, diag.line)
    ]


def _finalize_project(
    project: Sequence[ProjectChecker],
    suppressions: dict[str, SuppressionIndex],
) -> list[Diagnostic]:
    """Run project-checker finalizers, honoring per-file suppressions."""
    diagnostics: list[Diagnostic] = []
    for checker in project:
        for diag in checker.finalize():
            index = suppressions.get(diag.path)
            if index is not None and index.is_suppressed(diag.rule, diag.line):
                continue
            diagnostics.append(diag)
    return diagnostics


def lint_source(
    source: str,
    display_path: str,
    checkers: Sequence[Checker] | None = None,
) -> list[Diagnostic]:
    """Lint one in-memory source blob (the unit tests' entry point).

    Project-wide checkers see just this one file: they collect it and
    finalize immediately, which is also how single-file pre-commit runs
    behave.
    """
    if checkers is None:
        checkers = all_checkers()
    try:
        ctx = make_context(source, display_path)
    except SyntaxError as exc:
        return [_syntax_error_diag(display_path, exc)]
    per_file, project = _split_checkers(checkers)
    diagnostics = _check_file(ctx, per_file)
    for checker in project:
        if checker.applies_to(ctx):
            checker.collect(ctx)
    diagnostics.extend(
        _finalize_project(project, {display_path: ctx.suppressions})
    )
    return sorted(diagnostics)


def lint_paths(
    paths: Sequence[str],
    select: Iterable[str] | None = None,
) -> list[Diagnostic]:
    """Lint every python file reachable from ``paths``.

    Per-file rules run as each file is parsed; project-wide rules
    collect every file first and finalize once at the end, so
    cross-module contracts resolve no matter the argument order.
    """
    per_file, project = _split_checkers(all_checkers(select))
    diagnostics: list[Diagnostic] = []
    suppressions: dict[str, SuppressionIndex] = {}
    root = os.getcwd()
    for filepath in iter_python_files(paths):
        display = os.path.relpath(filepath, root)
        if display.startswith(".."):
            display = filepath
        with open(filepath, encoding="utf-8") as handle:
            source = handle.read()
        try:
            ctx = make_context(source, display)
        except SyntaxError as exc:
            diagnostics.append(_syntax_error_diag(display, exc))
            continue
        suppressions[display] = ctx.suppressions
        diagnostics.extend(_check_file(ctx, per_file))
        for checker in project:
            if checker.applies_to(ctx):
                checker.collect(ctx)
    diagnostics.extend(_finalize_project(project, suppressions))
    return sorted(diagnostics)

"""repro-lint: domain-specific static analysis for the MHA reproduction.

Five rules patrol invariants the paper states but Python cannot enforce
by itself:

* **RL001 determinism** — no wall-clock reads or unseeded RNGs in the
  planning/simulation/online subsystems.
* **RL002 units discipline** — byte quantities are spelled with
  ``repro.units`` constants, never raw ``65536``-style literals.
* **RL003 parallel safety** — only module-level callables go into
  ``parallel_map``'s process fan-out.
* **RL004 cost-model purity** — Eq. 2 evaluation never mutates its
  inputs, touches globals, does I/O, or imports lazily.
* **RL005 float equality** — no exact ``==``/``!=`` on floats outside
  tests.

See ``docs/static-analysis.md`` for the full rule catalogue and the
checker-authoring guide.
"""

from .diagnostics import Diagnostic
from .engine import lint_paths, lint_source
from .registry import Checker, all_checkers, register

__all__ = [
    "Checker",
    "Diagnostic",
    "all_checkers",
    "lint_paths",
    "lint_source",
    "register",
]

"""Project-wide call graph and interprocedural effect inference (RL3xx).

This module gives the RL3xx rules their engine: a call graph over every
collected file (plus the transitive ``repro.*`` closure loaded from
``src/`` on disk, so single-file pre-commit runs stay sound) and a
per-function *effect summary* propagated to fixpoint over that graph.

The lattice is the one documented in :mod:`repro.effects` — ``PURE``
(the empty set) at the bottom, the seven effect atoms above it::

    PURE ⊑ {READS_CONFIG, READS_ENV, RNG, TIME,
            MUTATES_ARG, MUTATES_GLOBAL, IO}

plus one *internal* pseudo-effect, ``MUTATES_STATE``, that never appears
in a public summary: a method writing through ``self``/``cls`` is not a
mutation of the method's own contract (the RL004 precedent — controllers
may keep internal state), but it *is* a mutation of the receiver, so at
every call site it is translated by receiver kind — ``obj.m()`` where
``obj`` is a caller parameter becomes ``MUTATES_ARG`` in the caller,
where ``obj`` is a module global becomes ``MUTATES_GLOBAL``, where
``obj`` is a local it is dropped.  ``MUTATES_ARG`` crossing a call edge
is translated the same way, from the kinds of the arguments actually
passed.

Soundness model
---------------
The analysis is *sound by default*: a call it cannot resolve — a bare
callable parameter, an attribute on an object of unknown type, an
external library with no intrinsic entry — does not silently default to
pure.  It marks the caller **unproven**, and unprovenness propagates to
callers exactly like an effect.  The purity rules refuse to certify
unproven functions; the two sanctioned trust boundaries are

* an ``@effects(...)`` declaration (:mod:`repro.effects`): the function
  exports exactly its declared set and is proven by fiat — and RL304
  polices the declaration against the inference in both directions;
* the spec-keyed intrinsic table below, which pins the seed-lineage
  constructors ``repro.determinism:derive_seed`` / ``derive_rng`` as
  PURE.  They *do* read ``os.environ`` and append to a module-level
  ledger — but only under ``REPRO_SANITIZE=1``, a diagnostic side
  channel owned by the RL2xx family and the runtime sanitizer; treating
  the sanctioned seed-derivation path as RNG/IO here would poison every
  seeded worker in the repo and drown the real findings.

Witnesses
---------
Every effect (and the unproven flag) remembers the *first* origin that
introduced it: either a local AST site (``("local", line, detail)``) or
a call edge (``("call", line, callee_spec, callee_effect)``).  Because
an effect is only ever acquired from a callee that already holds it,
following origins always terminates at a local witness, even through
mutual recursion — that is the chain ``explain`` prints.

Layering: this module sits next to the engine and imports nothing from
``tools.repro_lint.checkers`` (the RL3xx checkers import *it*), and it
must not import :mod:`repro` — the CLI runs without ``PYTHONPATH=src``,
so :data:`EFFECT_NAMES` is duplicated here and pinned to the runtime
copy by a test.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

__all__ = [
    "EFFECT_NAMES",
    "PUBLIC_EFFECTS",
    "MUTATES_STATE",
    "SPEC_EFFECT_OVERRIDES",
    "CallGraph",
    "CallSite",
    "FunctionNode",
    "ParallelSite",
    "WitnessStep",
    "build_graph",
    "effect_summary",
    "graph_for_contexts",
    "module_key",
]

#: must mirror ``repro.effects.EFFECT_NAMES`` (asserted by the test suite)
EFFECT_NAMES: tuple[str, ...] = (
    "READS_CONFIG",
    "READS_ENV",
    "RNG",
    "TIME",
    "MUTATES_ARG",
    "MUTATES_GLOBAL",
    "IO",
)

READS_CONFIG, READS_ENV, RNG, TIME, MUTATES_ARG, MUTATES_GLOBAL, IO = EFFECT_NAMES

#: internal pseudo-effect: mutates *internal state* of an object
#: reachable from self or an argument (caches, counters, EWMAs — the
#: RL004 "controllers may keep internal state" exemption).  Translated
#: at call edges: it hardens to MUTATES_GLOBAL when the receiver is a
#: module-level singleton, keeps propagating through param/self
#: receivers, and is dropped for locally-constructed objects.  Never
#: part of a public summary.
MUTATES_STATE = "MUTATES_STATE"

PUBLIC_EFFECTS = frozenset(EFFECT_NAMES)
PURE: frozenset[str] = frozenset()

_ENV = frozenset({READS_ENV})
_RNG = frozenset({RNG})
_TIME = frozenset({TIME})
_IO = frozenset({IO})

#: spec-keyed trust boundaries (see module docstring for the rationale)
SPEC_EFFECT_OVERRIDES: dict[str, frozenset[str]] = {
    "repro.determinism:derive_seed": PURE,
    "repro.determinism:derive_rng": PURE,
    "repro.determinism:sanitize_enabled": _ENV,
    # parallel_map is effect-transparent infrastructure: the *task's*
    # effects flow through the explicit task edge recorded at every
    # call site, and the pool management itself (REPRO_JOBS, process
    # spawn, pickle round-trip) is guaranteed not to change results —
    # sharded builds are bit-identical by contract (PR 7) and the twin
    # suites test n_jobs independence.  Treating pool plumbing as IO
    # would mark every fan-out caller IO and bury real task effects.
    "repro.core.parallel:parallel_map": PURE,
}

# --------------------------------------------------------------------------
# intrinsic effect tables for external (non-project) callables
# --------------------------------------------------------------------------

#: exact dotted names (checked before the prefix table)
_INTRINSIC_EXACT: dict[str, frozenset[str]] = {
    "os.getenv": _ENV,
    "os.putenv": frozenset({MUTATES_GLOBAL}),
    "os.cpu_count": _ENV,
    "os.getcwd": _ENV,
    "os.getpid": _ENV,
    "os.uname": _ENV,
    "os.urandom": _RNG,
    "os.environ.get": _ENV,
    "os.environ.keys": _ENV,
    "os.environ.items": _ENV,
    "os.fspath": PURE,
    "sys.exit": _IO,
    "sys.getsizeof": PURE,
    "sys.intern": PURE,
    "time.sleep": _TIME,
    "json.dump": _IO,
    "json.load": _IO,
    "pickle.dump": _IO,
    "pickle.load": _IO,
    "numpy.save": _IO,
    "numpy.savez": _IO,
    "numpy.savez_compressed": _IO,
    "numpy.load": _IO,
    "numpy.savetxt": _IO,
    "numpy.loadtxt": _IO,
    "numpy.memmap": _IO,
    "uuid.uuid1": _RNG | _TIME,
    "uuid.uuid4": _RNG,
    "warnings.warn": _IO,
    "platform.machine": _ENV,
    "platform.python_version": _ENV,
    "platform.node": _ENV,
    "platform.system": _ENV,
}

#: dotted-prefix table, longest match wins ("numpy.random." beats "numpy.")
_INTRINSIC_PREFIX: tuple[tuple[str, frozenset[str]], ...] = (
    ("os.path.", PURE),  # lexical path algebra; FS-touching entries below
    ("os.environ", _ENV),
    ("os.", _IO),
    ("sys.", _ENV),
    ("time.", _TIME),
    ("datetime.", _TIME),  # only reached for now()/today()-style reads
    ("random.", _RNG),
    ("secrets.", _RNG),
    ("numpy.random.", _RNG),
    ("numpy.testing.", PURE),
    ("numpy.", PURE),
    ("math.", PURE),
    ("cmath.", PURE),
    ("statistics.", PURE),
    ("itertools.", PURE),
    ("functools.", PURE),
    ("operator.", PURE),
    ("collections.", PURE),
    ("dataclasses.", PURE),
    ("enum.", PURE),
    ("typing.", PURE),
    ("abc.", PURE),
    ("copy.", PURE),
    ("json.", PURE),
    ("pickle.", PURE),
    ("hashlib.", PURE),
    ("hmac.", PURE),
    ("base64.", PURE),
    ("binascii.", PURE),
    ("struct.", PURE),
    ("zlib.", PURE),
    ("re.", PURE),
    ("string.", PURE),
    ("textwrap.", PURE),
    ("unicodedata.", PURE),
    ("heapq.", PURE),  # arg mutation handled via _FIRST_ARG_MUTATORS
    ("bisect.", PURE),
    ("array.", PURE),
    ("fnmatch.", PURE),
    ("difflib.", PURE),
    ("ast.", PURE),
    ("inspect.", PURE),
    ("contextlib.", PURE),
    ("argparse.", PURE),
    ("pytest.", PURE),
    ("hypothesis.", PURE),
    ("warnings.", PURE),
    ("logging.", _IO),
    ("io.", PURE),
    ("subprocess.", _IO),
    ("shutil.", _IO),
    ("socket.", _IO),
    ("requests.", _IO),
    ("urllib.", _IO),
    ("http.", _IO),
    ("tempfile.", _IO),
    ("glob.", _IO),
    ("pathlib.", PURE),  # Path() construction; FS methods via leaf table
    ("csv.", PURE),
    ("concurrent.", _IO),
    ("multiprocessing.", _IO),
    ("threading.", _IO),
    ("queue.", PURE),
    ("traceback.", PURE),
    ("importlib.", _IO),
    ("atexit.", frozenset({MUTATES_GLOBAL})),
    ("signal.", frozenset({MUTATES_GLOBAL})),
)

#: external callables that mutate their first positional argument
#: (translated by the argument's root kind, like MUTATES_ARG edges)
_FIRST_ARG_MUTATORS = {
    "heapq.heappush",
    "heapq.heappop",
    "heapq.heapify",
    "heapq.heappushpop",
    "heapq.heapreplace",
    "bisect.insort",
    "bisect.insort_left",
    "bisect.insort_right",
    "random.shuffle",
    "numpy.copyto",
    "numpy.put",
    "numpy.place",
    "numpy.fill_diagonal",
    "setattr",
    "delattr",
}

#: RNG constructors that are deterministic when given an explicit seed;
#: only the *unseeded* form draws OS entropy (the RL2xx rules police
#: where the seed itself comes from)
_SEEDED_RNG_CTORS = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "random.Random",
}

_IO_BUILTINS = {"print", "open", "input", "breakpoint", "__import__"}

_PURE_BUILTINS = {
    "abs", "aiter", "all", "any", "anext", "ascii", "bin", "bool",
    "bytearray", "bytes", "callable", "chr", "classmethod", "complex",
    "dict", "divmod", "enumerate", "filter", "float", "format",
    "frozenset", "getattr", "hasattr", "hash", "hex", "id", "int",
    "isinstance", "issubclass", "iter", "len", "list", "map", "max",
    "memoryview", "min", "next", "object", "oct", "ord", "pow",
    "property", "range", "repr", "reversed", "round", "set", "slice",
    "sorted", "staticmethod", "str", "sum", "super", "tuple", "type",
    "vars", "zip",
    # exception constructors
    "ArithmeticError", "AssertionError", "AttributeError",
    "BaseException", "BlockingIOError", "BrokenPipeError",
    "BufferError", "ConnectionError", "DeprecationWarning", "EOFError",
    "Exception", "FileExistsError", "FileNotFoundError",
    "FloatingPointError", "FutureWarning", "GeneratorExit",
    "ImportError", "IndentationError", "IndexError", "InterruptedError",
    "IsADirectoryError", "KeyError", "KeyboardInterrupt", "LookupError",
    "MemoryError", "ModuleNotFoundError", "NameError",
    "NotADirectoryError", "NotImplementedError", "OSError",
    "OverflowError", "PendingDeprecationWarning", "PermissionError",
    "ProcessLookupError", "RecursionError", "ReferenceError",
    "ResourceWarning", "RuntimeError", "RuntimeWarning",
    "StopAsyncIteration", "StopIteration", "SyntaxError", "SystemError",
    "SystemExit", "TabError", "TimeoutError", "TypeError",
    "UnboundLocalError", "UnicodeDecodeError", "UnicodeEncodeError",
    "UnicodeError", "UserWarning", "ValueError", "Warning",
    "ZeroDivisionError",
}

#: leaf method names that do I/O regardless of receiver type
_IO_LEAF_METHODS = {
    "write", "writelines", "flush", "fileno", "writerow", "writerows",
    "write_text", "write_bytes", "read_text", "read_bytes", "mkdir",
    "rmdir", "unlink", "touch", "rename", "hardlink_to", "symlink_to",
    "savefig", "to_csv", "iterdir", "rglob", "is_file", "is_dir",
    "exists", "stat", "samefile", "communicate", "send", "recv",
    "connect", "listen", "accept", "bind", "close", "seek", "tell",
    "truncate", "read", "readinto", "readline", "readlines", "glob",
    "open", "print_help", "print_usage",
}

#: leaf method names that mutate their receiver in place (builtin
#: containers, ndarrays, and ``numpy.random.Generator`` draws — a draw
#: advances the generator's state, so drawing from a *passed-in* rng is
#: an argument mutation; rngs built locally via ``derive_rng`` are not)
_MUTATOR_LEAF_METHODS = {
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "update", "add", "discard", "setdefault", "popitem",
    "fill", "partition_inplace", "put", "itemset", "resize",
    "appendleft", "extendleft", "popleft", "rotate", "move_to_end",
    "integers", "random", "shuffle", "permutation", "permuted",
    "choice", "normal", "uniform", "standard_normal", "exponential",
    "poisson", "binomial", "geometric", "lognormal", "bytes_",
    "getrandbits", "randint", "randrange", "sample", "gauss",
}

#: leaf method names assumed pure on *unknown* receivers (known project
#: receivers resolve to real method nodes first and never reach this
#: table); generous on purpose — every name here is a read-only method
#: of str/bytes/dict/list/set/tuple/ndarray/namedtuple in practice
_PURE_LEAF_METHODS = {
    "get", "keys", "values", "items", "copy", "count", "index",
    "join", "split", "rsplit", "splitlines", "strip", "lstrip",
    "rstrip", "startswith", "endswith", "replace", "format",
    "format_map", "lower", "upper", "title", "capitalize", "casefold",
    "center", "ljust", "rjust", "zfill", "encode", "decode", "hexdigest",
    "hex", "isdigit", "isalpha", "isalnum", "isspace",
    "isupper", "islower", "isidentifier", "partition", "rpartition",
    "find", "rfind", "expandtabs", "removeprefix", "removesuffix",
    "astype", "tolist", "tobytes", "item", "sum", "mean", "std", "var",
    "min", "max", "argmin", "argmax", "argsort", "searchsorted",
    "nonzero", "any", "all", "cumsum", "cumprod", "prod", "dot",
    "reshape", "ravel", "flatten", "squeeze", "transpose", "swapaxes",
    "repeat", "take", "clip", "round", "view", "byteswap", "newbyteorder",
    "difference", "union", "intersection", "symmetric_difference",
    "issubset", "issuperset", "isdisjoint", "most_common",
    "as_integer_ratio", "bit_length", "to_bytes", "from_bytes", "getvalue",
    "is_integer", "conjugate", "total_seconds", "isoformat", "spawn",
    "maketrans", "translate", "fromkeys", "mro", "name", "value",
    # re.Pattern / re.Match
    "match", "search", "fullmatch", "findall", "finditer", "sub",
    "subn", "group", "groups", "groupdict", "start", "end", "span",
    # struct.Struct
    "pack", "pack_into", "unpack", "unpack_from", "iter_unpack",
    # pathlib lexical (non-FS) algebra
    "with_suffix", "with_name", "with_stem", "joinpath", "as_posix",
    "relative_to", "is_absolute",
    # argparse builders (parse_args on an explicit argv list is pure;
    # reading sys.argv is caught separately as READS_ENV)
    "add_argument", "add_argument_group", "add_subparsers", "add_parser",
    "add_mutually_exclusive_group", "set_defaults", "parse_args",
    "parse_known_args", "format_help",
}

_SRC_ROOT = "src"


def effect_summary(effects: Iterable[str]) -> str:
    """Canonical rendering: ``"PURE"`` or effects in report order."""
    public = [e for e in EFFECT_NAMES if e in set(effects)]
    return ", ".join(public) if public else "PURE"


def module_key(posix_path: str) -> str:
    """Dotted module key for any path: ``src/repro/x.py`` → ``repro.x``,
    ``tests/tools/test_x.py`` → ``tests.tools.test_x``."""
    parts = posix_path.split("/")
    if "src" in parts:
        idx = len(parts) - 1 - parts[::-1].index("src")
        mod_parts = parts[idx + 1 :]
    else:
        mod_parts = [p for p in parts if p not in (".", "")]
    if not mod_parts or not mod_parts[-1].endswith(".py"):
        return ""
    mod_parts = list(mod_parts)
    mod_parts[-1] = mod_parts[-1][: -len(".py")]
    if mod_parts[-1] == "__init__":
        mod_parts = mod_parts[:-1]
    return ".".join(mod_parts)


def _attr_chain(node: ast.expr) -> list[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


def _root_name(node: ast.expr) -> str | None:
    """Leftmost name under attribute/subscript/starred wrapping."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


# --------------------------------------------------------------------------
# graph data model
# --------------------------------------------------------------------------


@dataclass
class CallSite:
    """A resolved project-internal call edge."""

    line: int
    col: int
    callee: str  # spec of the resolved target
    text: str  # short rendering for messages
    #: root kinds of the arguments passed: "param" | "global" | "self" | "local"
    arg_kinds: tuple[str, ...] = ()
    #: leftmost root name of each argument (aligned with ``arg_kinds``)
    arg_roots: tuple[str | None, ...] = ()
    #: keyword name per argument (None for positional; aligned)
    kw_names: tuple[str | None, ...] = ()
    #: root kind of the method receiver, if this was an attribute call
    receiver_kind: str | None = None
    #: root name of the method receiver
    receiver_root: str | None = None
    #: True when this edge is a constructor call (fresh receiver)
    is_ctor: bool = False
    #: True when ``*args``/``**kwargs`` defeat positional mapping
    varargs: bool = False


@dataclass
class ParallelSite:
    """One ``parallel_map(task, ...)`` occurrence."""

    caller: str
    path: str
    line: int
    col: int
    task: str | None  # resolved task spec, or None when dynamic
    text: str
    is_test: bool


@dataclass
class FunctionNode:
    """One function in the graph, with its evolving effect summary."""

    spec: str
    module: str
    qualname: str
    name: str
    path: str
    line: int
    col: int
    is_test: bool
    class_name: str | None = None
    params: tuple[str, ...] = ()
    #: ``@effects(...)`` declaration, if present
    declared: frozenset[str] | None = None
    declared_line: int = 0
    declared_literal: bool = True
    calls: list[CallSite] = field(default_factory=list)
    effects: set[str] = field(default_factory=set)
    #: parameter names this function is known to mutate (refines
    #: MUTATES_ARG translation at call sites; empty = unknown, callers
    #: fall back to the coarse all-arguments union)
    mutated_params: set[str] = field(default_factory=set)
    #: effect -> ("local", line, detail) | ("call", line, callee, callee_effect)
    origins: dict[str, tuple] = field(default_factory=dict)
    unresolved: list[tuple[int, str]] = field(default_factory=list)
    unproven: bool = False
    unproven_origin: tuple | None = None

    def add_local(self, effect: str, line: int, detail: str) -> None:
        if effect not in self.effects:
            self.effects.add(effect)
            self.origins[effect] = ("local", line, detail)

    def public_effects(self) -> frozenset[str]:
        return frozenset(self.effects) & PUBLIC_EFFECTS


@dataclass
class ClassInfo:
    name: str
    module: str
    line: int
    #: base-class expressions as dotted text, resolved lazily
    bases: tuple[str, ...] = ()
    methods: dict[str, str] = field(default_factory=dict)  # name -> spec
    #: instance-attribute types: attr -> dotted class text (module-local)
    attr_types: dict[str, str] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"{self.module}:{self.name}"


@dataclass
class ModuleInfo:
    name: str
    path: str
    is_test: bool
    #: local alias -> dotted module ("np" -> "numpy", "flat" -> "repro.pfs.flat")
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: local name -> (source module, attr) from ``from X import y [as z]``
    imported_names: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: top-level function name -> spec
    functions: dict[str, str] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: names bound at module top level (mutation targets -> MUTATES_GLOBAL)
    globals: set[str] = field(default_factory=set)
    #: module-level singletons: name -> dotted class text (``_LEDGER = Ledger()``)
    global_types: dict[str, str] = field(default_factory=dict)
    config_direct: dict[str, str] = field(default_factory=dict)
    config_modules: set[str] = field(default_factory=set)


def _resolve_relative(base_module: str, is_package: bool, level: int,
                      target: str | None) -> str:
    """Absolute dotted module for a (possibly relative) import."""
    if level == 0:
        return target or ""
    parts = base_module.split(".") if base_module else []
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop:
        parts = parts[: len(parts) - drop] if drop <= len(parts) else []
    if target:
        parts = parts + target.split(".")
    return ".".join(parts)


def _parse_effects_decorator(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[frozenset[str] | None, int, bool]:
    """The ``@effects(...)`` declaration on ``fn``: (set, line, literal)."""
    for dec in fn.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        chain = _attr_chain(dec.func)
        if not chain or chain[-1] != "effects":
            continue
        names: set[str] = set()
        literal = not dec.keywords
        for arg in dec.args:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                names.add(arg.value)
            else:
                literal = False
        return frozenset(names), dec.lineno, literal
    return None, 0, True


# --------------------------------------------------------------------------
# graph construction
# --------------------------------------------------------------------------


@dataclass
class _Scope:
    """Everything name resolution knows inside one function body."""

    module: ModuleInfo
    class_info: ClassInfo | None = None
    self_name: str | None = None
    params: frozenset[str] = frozenset()
    #: nested defs / named lambdas visible here (own + enclosing)
    local_funcs: dict[str, str] = field(default_factory=dict)
    #: plain ``x = <callable expr>`` aliases, resolved lazily
    alias_exprs: dict[str, ast.expr] = field(default_factory=dict)
    #: locals with a statically known project class: name -> class key
    local_types: dict[str, str] = field(default_factory=dict)
    #: function-level ``import x as y``
    local_module_aliases: dict[str, str] = field(default_factory=dict)
    #: function-level ``from x import y``
    local_imported: dict[str, tuple[str, str]] = field(default_factory=dict)
    declared_globals: frozenset[str] = frozenset()

    def kind_of(self, name: str | None) -> str:
        if name is None:
            return "local"
        if name == self.self_name:
            return "self"
        if name in self.params:
            return "param"
        mod = self.module
        if (
            name in self.declared_globals
            or name in mod.globals
            or name in mod.functions
            or name in mod.classes
            or name in mod.imported_names
            or name in mod.module_aliases
        ):
            return "global"
        return "local"


@dataclass
class _ScanUnit:
    node: FunctionNode
    fn: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    scope: _Scope


def _call_text(call: ast.Call) -> str:
    chain = _attr_chain(call.func)
    if chain:
        return ".".join(chain) + "()"
    if isinstance(call.func, ast.Call):
        return "(...)()"
    if isinstance(call.func, ast.Lambda):
        return "<lambda>()"
    return "<dynamic>()"


def _annotation_text(node: ast.expr | None) -> str | None:
    """Best-effort dotted class name out of an annotation expression."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip()
    if isinstance(node, (ast.Name, ast.Attribute)):
        chain = _attr_chain(node)
        return ".".join(chain) if chain else None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            if isinstance(side, ast.Constant) and side.value is None:
                continue
            return _annotation_text(side)
    return None


class _GraphBuilder:
    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.nodes: dict[str, FunctionNode] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.parallel_sites: list[ParallelSite] = []
        #: non-test method specs grouped by name, for duck-typed joins
        self.methods_by_name: dict[str, list[str]] = {}
        self._pending: list[_ScanUnit] = []
        self._disk_attempted: set[str] = set()

    # -- module loading ----------------------------------------------------

    def add_module(
        self,
        tree: ast.Module,
        posix_path: str,
        display_path: str,
        is_test: bool,
    ) -> None:
        name = module_key(posix_path)
        if not name or name in self.modules:
            return
        mod = ModuleInfo(name=name, path=display_path, is_test=is_test)
        self.modules[name] = mod
        is_package = posix_path.endswith("/__init__.py")
        for stmt in self._module_stmts(tree.body):
            self._collect_stmt(mod, stmt, is_package)
        self._collect_config_aliases(mod, tree)

    @staticmethod
    def _module_stmts(body: list[ast.stmt]) -> Iterator[ast.stmt]:
        """Top-level statements, looking through If/Try guards
        (``if TYPE_CHECKING:``, optional-dependency imports)."""
        stack = list(reversed(body))
        while stack:
            stmt = stack.pop()
            yield stmt
            if isinstance(stmt, (ast.If, ast.Try)):
                inner: list[ast.stmt] = list(stmt.body)
                for attr in ("orelse", "finalbody"):
                    inner.extend(getattr(stmt, attr, []))
                for handler in getattr(stmt, "handlers", []):
                    inner.extend(handler.body)
                stack.extend(reversed(inner))

    def _collect_stmt(
        self, mod: ModuleInfo, stmt: ast.stmt, is_package: bool
    ) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname:
                    mod.module_aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    mod.module_aliases[root] = root
        elif isinstance(stmt, ast.ImportFrom):
            source = _resolve_relative(
                mod.name, is_package, stmt.level, stmt.module
            )
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                mod.imported_names[alias.asname or alias.name] = (
                    source,
                    alias.name,
                )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            node = self._make_node(mod, stmt, qualname=stmt.name, class_info=None)
            mod.functions[stmt.name] = node.spec
        elif isinstance(stmt, ast.ClassDef):
            self._collect_class(mod, stmt)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    mod.globals.add(target.id)
                    value = getattr(stmt, "value", None)
                    if isinstance(value, ast.Call):
                        chain = _attr_chain(value.func)
                        if chain:
                            mod.global_types.setdefault(
                                target.id, ".".join(chain)
                            )
                elif isinstance(target, ast.Tuple):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            mod.globals.add(elt.id)

    def _collect_class(self, mod: ModuleInfo, stmt: ast.ClassDef) -> None:
        bases = []
        for base in stmt.bases:
            chain = _attr_chain(base)
            if chain:
                bases.append(".".join(chain))
        info = ClassInfo(
            name=stmt.name, module=mod.name, line=stmt.lineno,
            bases=tuple(bases),
        )
        mod.classes[stmt.name] = info
        self.classes[info.key] = info
        for member in stmt.body:
            if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                node = self._make_node(
                    mod, member,
                    qualname=f"{stmt.name}.{member.name}", class_info=info,
                )
                info.methods[member.name] = node.spec
                if not mod.is_test and not member.name.startswith("__"):
                    self.methods_by_name.setdefault(member.name, []).append(
                        node.spec
                    )
                if member.name == "__init__":
                    self._collect_attr_types(info, member)
            elif isinstance(member, ast.AnnAssign) and isinstance(
                member.target, ast.Name
            ):
                text = _annotation_text(member.annotation)
                if text:
                    info.attr_types[member.target.id] = text

    @staticmethod
    def _collect_attr_types(
        info: ClassInfo, init: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        for node in ast.walk(init):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                text = _annotation_text(node.annotation)
                if (
                    text
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    info.attr_types.setdefault(target.attr, text)
                    continue
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and isinstance(value, ast.Call)
            ):
                continue
            chain = _attr_chain(value.func)
            if chain:
                info.attr_types.setdefault(target.attr, ".".join(chain))

    @staticmethod
    def _collect_config_aliases(mod: ModuleInfo, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                is_config = (node.module or "").split(".")[-1:] == ["config"] and (
                    node.level > 0 or (node.module or "").startswith("repro")
                )
                if is_config:
                    for alias in node.names:
                        mod.config_direct[alias.asname or alias.name] = alias.name
                elif node.module in ("repro", None) or node.level > 0:
                    for alias in node.names:
                        if alias.name == "config":
                            mod.config_modules.add(alias.asname or "config")
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "repro.config" and alias.asname:
                        mod.config_modules.add(alias.asname)

    def _make_node(
        self,
        mod: ModuleInfo,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        class_info: ClassInfo | None,
        enclosing: _Scope | None = None,
    ) -> FunctionNode:
        declared, dline, literal = _parse_effects_decorator(fn)
        args = fn.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        self_name = None
        if class_info is not None and enclosing is None and names and names[0] in (
            "self", "cls",
        ):
            self_name = names[0]
            names = names[1:]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        node = FunctionNode(
            spec=f"{mod.name}:{qualname}",
            module=mod.name,
            qualname=qualname,
            name=fn.name,
            path=mod.path,
            line=fn.lineno,
            col=fn.col_offset,
            is_test=mod.is_test,
            class_name=class_info.name if class_info else None,
            params=tuple(names),
            declared=declared,
            declared_line=dline,
            declared_literal=literal,
        )
        self.nodes[node.spec] = node
        scope = _Scope(
            module=mod,
            class_info=class_info,
            self_name=self_name,
            params=frozenset(names),
        )
        if enclosing is not None:
            scope.local_funcs.update(enclosing.local_funcs)
            scope.local_types.update(enclosing.local_types)
            scope.local_module_aliases.update(enclosing.local_module_aliases)
            scope.local_imported.update(enclosing.local_imported)
        self._pending.append(_ScanUnit(node=node, fn=fn, scope=scope))
        return node

    def _make_lambda_node(
        self, mod: ModuleInfo, fn: ast.Lambda, parent: FunctionNode,
        scope: _Scope,
    ) -> FunctionNode:
        qualname = f"{parent.qualname}.<locals>.<lambda@{fn.lineno}>"
        args = fn.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        node = FunctionNode(
            spec=f"{mod.name}:{qualname}",
            module=mod.name,
            qualname=qualname,
            name="<lambda>",
            path=mod.path,
            line=fn.lineno,
            col=fn.col_offset,
            is_test=mod.is_test,
            params=tuple(names),
        )
        self.nodes[node.spec] = node
        sub = _Scope(
            module=mod,
            class_info=scope.class_info,
            self_name=scope.self_name,
            params=frozenset(names),
            local_funcs=dict(scope.local_funcs),
            local_types=dict(scope.local_types),
            local_module_aliases=dict(scope.local_module_aliases),
            local_imported=dict(scope.local_imported),
        )
        self._pending.append(_ScanUnit(node=node, fn=fn, scope=sub))
        return node

    def _is_project(self, module: str) -> bool:
        return (
            module in self.modules
            or module == "repro"
            or module.startswith("repro.")
            or module.startswith("tests.")
            or module.startswith("tools.")
        )

    def _ensure_module(self, dotted: str) -> ModuleInfo | None:
        mod = self.modules.get(dotted)
        if mod is not None:
            return mod
        if dotted in self._disk_attempted:
            return None
        self._disk_attempted.add(dotted)
        rel = dotted.replace(".", "/")
        candidates = [f"src/{rel}.py", f"src/{rel}/__init__.py"]
        if not dotted.startswith("repro"):
            candidates += [f"{rel}.py", f"{rel}/__init__.py"]
        for candidate in candidates:
            if not os.path.isfile(candidate):
                continue
            try:
                with open(candidate, encoding="utf-8") as handle:
                    tree = ast.parse(handle.read(), filename=candidate)
            except (OSError, SyntaxError):
                return None
            self.add_module(tree, candidate, candidate, is_test=False)
            return self.modules.get(module_key(candidate))
        return None

    # -- class/method resolution ------------------------------------------

    def _resolve_class_text(
        self, text: str | None, mod: ModuleInfo, depth: int = 0
    ) -> ClassInfo | None:
        if not text or depth > 8:
            return None
        parts = text.split(".")
        head = parts[0]
        if len(parts) == 1:
            if head in mod.classes:
                return mod.classes[head]
            imp = mod.imported_names.get(head)
            if imp:
                return self._resolve_imported_class(imp[0], imp[1], depth)
            return None
        alias = mod.module_aliases.get(head)
        if alias is not None:
            target = self._ensure_module(".".join([alias] + parts[1:-1]))
            if target is not None:
                return self._resolve_class_text(parts[-1], target, depth + 1)
        imp = mod.imported_names.get(head)
        if imp and len(parts) == 2:
            source, attr = imp
            target = self._ensure_module(f"{source}.{attr}")
            if target is not None:
                return self._resolve_class_text(parts[1], target, depth + 1)
        return None

    def _resolve_imported_class(
        self, source: str, attr: str, depth: int
    ) -> ClassInfo | None:
        if depth > 8 or not self._is_project(source):
            return None
        mod = self._ensure_module(source)
        if mod is None:
            return None
        if attr in mod.classes:
            return mod.classes[attr]
        imp = mod.imported_names.get(attr)
        if imp:
            return self._resolve_imported_class(imp[0], imp[1], depth + 1)
        return None

    def _resolve_method(
        self, info: ClassInfo | None, name: str, depth: int = 0
    ) -> str | None:
        if info is None or depth > 8:
            return None
        spec = info.methods.get(name)
        if spec is not None:
            return spec
        mod = self.modules.get(info.module)
        if mod is None:
            return None
        for base in info.bases:
            found = self._resolve_method(
                self._resolve_class_text(base, mod, depth + 1), name, depth + 1
            )
            if found is not None:
                return found
        return None

    # -- callable resolution ----------------------------------------------

    def _intrinsic(self, dotted: str) -> tuple[frozenset[str], bool] | None:
        """(effects, mutates_first_arg) for an external dotted callable."""
        mutates = dotted in _FIRST_ARG_MUTATORS
        exact = _INTRINSIC_EXACT.get(dotted)
        if exact is not None:
            return exact, mutates
        best: tuple[str, frozenset[str]] | None = None
        for prefix, effs in _INTRINSIC_PREFIX:
            if dotted.startswith(prefix) or dotted == prefix.rstrip("."):
                if best is None or len(prefix) > len(best[0]):
                    best = (prefix, effs)
        if best is not None:
            return best[1], mutates
        if mutates:
            return PURE, True
        return None

    def _dotted(self, chain: list[str], scope: _Scope) -> str | None:
        """Dotted external name for an attribute chain, alias-resolved."""
        head = chain[0]
        target = scope.local_module_aliases.get(head)
        if target is None:
            target = scope.module.module_aliases.get(head)
        if target is not None:
            return ".".join([target] + chain[1:])
        imp = scope.module.imported_names.get(head)
        if imp and not self._is_project(imp[0]):
            return ".".join([imp[0], imp[1]] + chain[1:])
        return None

    def _resolve_project_dotted(
        self, dotted: str, depth: int = 0
    ) -> tuple | None:
        """Resolve ``repro.x.y.f`` / ``repro.x.y.C`` / ``...C.m`` to a target."""
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            mod = self._ensure_module(".".join(parts[:split]))
            if mod is None:
                continue
            rest = parts[split:]
            return self._resolve_in_module(mod, rest, depth)
        return None

    def _resolve_in_module(
        self, mod: ModuleInfo, rest: list[str], depth: int = 0
    ) -> tuple | None:
        if not rest or depth > 8:
            return None
        head = rest[0]
        if len(rest) == 1:
            if head in mod.functions:
                return ("node", mod.functions[head])
            if head in mod.classes:
                return ("ctor", mod.classes[head].key)
            imp = mod.imported_names.get(head)
            if imp:
                return self._resolve_imported(imp[0], imp[1], depth + 1)
            sub = self._ensure_module(f"{mod.name}.{head}")
            if sub is not None:
                return ("module", sub.name)
            return None
        if head in mod.classes and len(rest) == 2:
            spec = self._resolve_method(mod.classes[head], rest[1])
            return ("node", spec) if spec else None
        imp = mod.imported_names.get(head)
        if imp and len(rest) == 2:
            info = self._resolve_imported_class(imp[0], imp[1], depth + 1)
            spec = self._resolve_method(info, rest[1])
            return ("node", spec) if spec else None
        sub = self._ensure_module(f"{mod.name}.{head}")
        if sub is not None:
            return self._resolve_in_module(sub, rest[1:], depth + 1)
        return None

    def _resolve_imported(
        self, source: str, attr: str, depth: int = 0
    ) -> tuple | None:
        if depth > 8:
            return None
        if not self._is_project(source):
            hit = self._intrinsic(f"{source}.{attr}")
            if hit is not None:
                effects, mutates = hit
                return ("intrinsic", effects, mutates, f"{source}.{attr}")
            return None
        mod = self._ensure_module(source)
        if mod is None:
            return None
        return self._resolve_in_module(mod, [attr], depth + 1)

    def resolve_callable(
        self, expr: ast.expr, scope: _Scope, depth: int = 0
    ) -> tuple | None:
        """Resolve a callable expression.

        Returns one of ``("node", spec)``, ``("ctor", class_key)``,
        ``("intrinsic", effects, mutates_first, dotted)``, ``("pure",)``,
        ``("module", dotted)``, or ``None`` (unresolved).
        """
        if depth > 8:
            return None
        if isinstance(expr, ast.Name):
            return self._resolve_name(expr.id, scope, depth)
        if isinstance(expr, ast.Attribute):
            chain = _attr_chain(expr)
            if chain:
                return self._resolve_attr(chain, scope, depth)
            # method on an anonymous receiver (call result, subscript,
            # comprehension): only the leaf name is knowable — try the
            # intrinsic leaf tables, then the project-wide duck join
            hit = self._leaf_by_name(expr.attr, "local")
            if hit is not None:
                return hit
            if expr.attr in self.methods_by_name:
                return ("group", expr.attr)
            return None
        if isinstance(expr, ast.Call):
            # functools.partial(f, ...) — resolve the wrapped callable
            inner = self.resolve_callable(expr.func, scope, depth + 1)
            is_partial = False
            chain = _attr_chain(expr.func)
            if chain and chain[-1] == "partial":
                is_partial = True
            if inner is not None and inner[0] == "intrinsic" and inner[3] in (
                "functools.partial",
            ):
                is_partial = True
            if is_partial and expr.args:
                return self.resolve_callable(expr.args[0], scope, depth + 1)
            return None
        return None

    def _resolve_name(self, name: str, scope: _Scope, depth: int) -> tuple | None:
        if name == scope.self_name and scope.class_info is not None:
            return ("ctor", scope.class_info.key)  # cls(...) in classmethods
        if name in scope.local_funcs:
            return ("node", scope.local_funcs[name])
        alias = scope.alias_exprs.get(name)
        if alias is not None:
            return self.resolve_callable(alias, scope, depth + 1)
        local_imp = scope.local_imported.get(name)
        if local_imp is not None:
            return self._resolve_imported(local_imp[0], local_imp[1], depth + 1)
        mod = scope.module
        if name in mod.functions:
            return ("node", mod.functions[name])
        if name in mod.classes:
            return ("ctor", mod.classes[name].key)
        imp = mod.imported_names.get(name)
        if imp is not None:
            return self._resolve_imported(imp[0], imp[1], depth + 1)
        if name in mod.module_aliases or name in scope.local_module_aliases:
            return None  # calling a module object
        if name in _IO_BUILTINS:
            return ("intrinsic", _IO, False, name)
        if name in _FIRST_ARG_MUTATORS:
            return ("intrinsic", PURE, True, name)
        if name in _PURE_BUILTINS:
            return ("pure",)
        return None

    def _resolve_attr(
        self, chain: list[str], scope: _Scope, depth: int
    ) -> tuple | None:
        head, leaf = chain[0], chain[-1]
        # self.attr...method() through instance-attribute types
        if head == scope.self_name and scope.class_info is not None:
            hit = self._resolve_typed_chain(scope.class_info, chain[1:], scope)
            if hit is not None:
                return hit
            return self._unknown_receiver(chain, scope)
        # typed local: t.method(), t.attr.method()
        if head in scope.local_types:
            info = self.classes.get(scope.local_types[head])
            if info is not None:
                hit = self._resolve_typed_chain(info, chain[1:], scope)
                if hit is not None:
                    return hit
        # module-level singleton: _LEDGER.record()
        if head in scope.module.global_types:
            info = self._resolve_class_text(
                scope.module.global_types[head], scope.module
            )
            if info is not None:
                hit = self._resolve_typed_chain(info, chain[1:], scope)
                if hit is not None:
                    return hit
        # module alias chains: np.argsort, flat.translate_many, os.environ.get
        dotted = self._dotted(chain, scope)
        if dotted is not None:
            root = dotted.split(".")[0]
            if self._is_project(root):
                hit = self._resolve_project_dotted(dotted, depth)
                if hit is not None and hit[0] != "module":
                    return hit
                return None
            hit = self._intrinsic(dotted)
            if hit is not None:
                return ("intrinsic", hit[0], hit[1], dotted)
            return None
        # ClassName.method(...) via import or local class
        info: ClassInfo | None = None
        if head in scope.module.classes:
            info = scope.module.classes[head]
        else:
            imp = scope.module.imported_names.get(head)
            if imp is not None:
                if not self._is_project(imp[0]):
                    return self._resolve_attr_external(imp, chain, depth)
                info = self._resolve_imported_class(imp[0], imp[1], depth + 1)
        if info is not None and len(chain) == 2:
            spec = self._resolve_method(info, leaf)
            if spec is not None:
                return ("node", spec)
        return self._unknown_receiver(chain, scope)

    def _unknown_receiver(self, chain: list[str], scope: _Scope) -> tuple | None:
        """Receiver type unknown: leaf tables first, then the duck join —
        if the method name is defined by project classes (and only then),
        the call joins the effects of *every* project method of that
        name, which over-approximates any project-internal dispatch."""
        hit = self._leaf_fallback(chain, scope)
        if hit is not None:
            return hit
        if chain[-1] in self.methods_by_name:
            return ("group", chain[-1])
        return None

    def _resolve_attr_external(
        self, imp: tuple[str, str], chain: list[str], depth: int
    ) -> tuple | None:
        dotted = ".".join([imp[0], imp[1]] + chain[1:])
        hit = self._intrinsic(dotted)
        if hit is not None:
            return ("intrinsic", hit[0], hit[1], dotted)
        return None

    def _resolve_typed_chain(
        self, info: ClassInfo, rest: list[str], scope: _Scope
    ) -> tuple | None:
        """Walk ``attr.attr...method`` links through declared attr types."""
        current: ClassInfo | None = info
        for mid in rest[:-1]:
            if current is None:
                return None
            mod = self.modules.get(current.module)
            text = current.attr_types.get(mid)
            if mod is None or text is None:
                return None
            current = self._resolve_class_text(text, mod)
        if current is None or not rest:
            return None
        spec = self._resolve_method(current, rest[-1])
        if spec is not None:
            return ("node", spec)
        return None

    def _leaf_fallback(self, chain: list[str], scope: _Scope) -> tuple | None:
        return self._leaf_by_name(chain[-1], scope.kind_of(chain[0]))

    def _leaf_by_name(self, leaf: str, receiver_kind: str) -> tuple | None:
        if leaf == "__setattr__":
            # object.__setattr__(self, ...) — frozen-dataclass init idiom
            return ("intrinsic", PURE, True, "object.__setattr__")
        if leaf in _IO_LEAF_METHODS:
            return ("intrinsic", _IO, False, f"<receiver>.{leaf}")
        if leaf in _MUTATOR_LEAF_METHODS:
            return ("recvmut", receiver_kind, leaf)
        if leaf in _PURE_LEAF_METHODS:
            return ("pure",)
        return None

    # -- function body scanning -------------------------------------------

    def scan_all(self) -> None:
        i = 0
        while i < len(self._pending):
            self._scan(self._pending[i])
            i += 1

    def _scan(self, unit: _ScanUnit) -> None:
        node, fn, scope = unit.node, unit.fn, unit.scope
        mod = scope.module
        body: list[ast.stmt]
        if isinstance(fn, ast.Lambda):
            body = [ast.Expr(value=fn.body)]
        else:
            body = fn.body
        self._prepass(node, body, scope)
        # annotated params contribute local types
        if not isinstance(fn, ast.Lambda):
            args = fn.args
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                text = _annotation_text(arg.annotation)
                info = self._resolve_class_text(text, mod)
                if info is not None:
                    scope.local_types.setdefault(arg.arg, info.key)
        stack: list[ast.AST] = list(reversed(body))
        while stack:
            item = stack.pop()
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # own node, pre-registered
            if isinstance(item, ast.Lambda):
                child = self._make_lambda_node(mod, item, node, scope)
                # inline lambdas are almost always invoked by the callee
                # they are passed to (sort keys, small tasks) — connect
                # conservatively so their effects surface in the caller
                node.calls.append(
                    CallSite(
                        line=item.lineno, col=item.col_offset,
                        callee=child.spec, text="<lambda>",
                    )
                )
                continue
            self._scan_node(node, item, scope)
            stack.extend(reversed(list(ast.iter_child_nodes(item))))
        node.unproven = bool(node.unresolved)
        if node.unresolved:
            line, text = node.unresolved[0]
            node.unproven_origin = ("local", line, text)

    def _prepass(
        self, node: FunctionNode, body: list[ast.stmt], scope: _Scope
    ) -> None:
        """Register nested defs, aliases, declared globals, local types."""
        mod = scope.module
        declared_globals: set[str] = set()
        stack: list[ast.AST] = list(reversed(body))
        while stack:
            item = stack.pop()
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child = self._make_node(
                    mod, item,
                    qualname=f"{node.qualname}.<locals>.{item.name}",
                    class_info=scope.class_info,
                    enclosing=scope,
                )
                scope.local_funcs[item.name] = child.spec
                continue
            if isinstance(item, ast.Lambda):
                continue
            if isinstance(item, ast.Global):
                declared_globals.update(item.names)
            elif isinstance(item, ast.Assign) and len(item.targets) == 1:
                target = item.targets[0]
                if isinstance(target, ast.Name):
                    value = item.value
                    if isinstance(value, ast.Lambda):
                        child = self._make_lambda_node(mod, value, node, scope)
                        scope.local_funcs[target.id] = child.spec
                    elif isinstance(value, (ast.Name, ast.Attribute, ast.Call)):
                        scope.alias_exprs[target.id] = value
                        if isinstance(value, ast.Call):
                            hit = self.resolve_callable(value.func, scope)
                            if hit is not None and hit[0] == "ctor":
                                scope.local_types[target.id] = hit[1]
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                info = self._resolve_class_text(
                    _annotation_text(item.annotation), mod
                )
                if info is not None:
                    scope.local_types[item.target.id] = info.key
            stack.extend(ast.iter_child_nodes(item))
        scope.declared_globals = frozenset(declared_globals)

    def _scan_node(self, node: FunctionNode, item: ast.AST, scope: _Scope) -> None:
        if isinstance(item, (ast.Import, ast.ImportFrom)):
            node.add_local(
                IO, item.lineno,
                "function-level import (sys.modules mutation + first-call I/O)",
            )
            if isinstance(item, ast.Import):
                for alias in item.names:
                    if alias.asname:
                        scope.local_module_aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        scope.local_module_aliases[root] = root
            else:
                source = _resolve_relative(
                    scope.module.name,
                    scope.module.path.endswith("__init__.py"),
                    item.level,
                    item.module,
                )
                for alias in item.names:
                    if alias.name != "*":
                        scope.local_imported[alias.asname or alias.name] = (
                            source, alias.name,
                        )
        elif isinstance(item, ast.Global):
            node.add_local(MUTATES_GLOBAL, item.lineno, "`global` statement")
        elif isinstance(item, ast.Nonlocal):
            # writes the *enclosing function's* locals — closure state,
            # not module state; MUTATES_STATE is stripped from public
            # summaries so the defining parent stays clean
            node.add_local(
                MUTATES_STATE, item.lineno, "`nonlocal` statement (closure state)"
            )
        elif isinstance(item, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                list(item.targets) if isinstance(item, ast.Assign)
                else [item.target]
            )
            self._scan_stores(node, targets, scope)
        elif isinstance(item, ast.Delete):
            self._scan_stores(node, list(item.targets), scope)
        elif isinstance(item, ast.Call):
            self._scan_call(node, item, scope)
        elif isinstance(item, ast.Attribute):
            self._scan_attribute(node, item, scope)
        elif isinstance(item, ast.Name):
            if (
                isinstance(item.ctx, ast.Load)
                and item.id in scope.module.config_direct
            ):
                node.add_local(
                    READS_CONFIG, item.lineno,
                    f"reads repro.config.{scope.module.config_direct[item.id]}",
                )

    def _scan_stores(
        self, node: FunctionNode, targets: list[ast.expr], scope: _Scope
    ) -> None:
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                targets.extend(target.elts)
                continue
            if isinstance(target, ast.Name):
                if target.id in scope.declared_globals:
                    node.add_local(
                        MUTATES_GLOBAL, target.lineno,
                        f"assigns module global `{target.id}`",
                    )
                continue
            if not isinstance(target, (ast.Attribute, ast.Subscript, ast.Starred)):
                continue
            root = _root_name(target)
            kind = scope.kind_of(root)
            if kind == "param":
                node.add_local(
                    MUTATES_ARG, target.lineno,
                    f"writes into argument `{root}`",
                )
            elif kind == "global":
                node.add_local(
                    MUTATES_GLOBAL, target.lineno,
                    f"writes module-level state `{root}`",
                )
            elif kind == "self":
                node.add_local(
                    MUTATES_STATE, target.lineno,
                    f"writes `{root}` state",
                )

    def _scan_attribute(
        self, node: FunctionNode, item: ast.Attribute, scope: _Scope
    ) -> None:
        chain = _attr_chain(item)
        if not chain:
            return
        dotted = self._dotted(chain, scope)
        if dotted is not None:
            if dotted.startswith("os.environ"):
                node.add_local(READS_ENV, item.lineno, "reads os.environ")
                return
            if dotted.startswith("sys.argv"):
                node.add_local(READS_ENV, item.lineno, "reads sys.argv")
                return
        mod = scope.module
        if len(chain) >= 2 and (
            chain[0] in mod.config_modules
            or ".".join(chain[:-1]) in mod.config_modules
            or ".".join(chain[:-1]) == "repro.config"
        ):
            node.add_local(
                READS_CONFIG, item.lineno, f"reads repro.config.{chain[-1]}"
            )

    def _scan_call(self, node: FunctionNode, call: ast.Call, scope: _Scope) -> None:
        chain = _attr_chain(call.func)
        leaf = chain[-1] if chain else None
        if leaf == "parallel_map":
            self._record_parallel_site(node, call, scope)
        args = list(call.args) + [kw.value for kw in call.keywords]
        arg_kinds = tuple(scope.kind_of(_root_name(a)) for a in args)
        arg_roots = tuple(_root_name(a) for a in args)
        kw_names = tuple(
            [None] * len(call.args) + [kw.arg for kw in call.keywords]
        )
        varargs = any(isinstance(a, ast.Starred) for a in call.args) or any(
            kw.arg is None for kw in call.keywords
        )
        is_attr = isinstance(call.func, ast.Attribute) and bool(chain)
        receiver_kind = scope.kind_of(chain[0]) if is_attr else None
        receiver_root = chain[0] if is_attr else None
        text = _call_text(call)
        hit = self.resolve_callable(call.func, scope)
        if hit is None:
            node.unresolved.append((call.lineno, f"unresolved call {text}"))
            return
        kind = hit[0]
        if kind == "pure":
            return
        if kind == "module":
            node.unresolved.append((call.lineno, f"call of module {hit[1]}"))
            return
        if kind == "recvmut":
            self._apply_receiver_mutation(
                node, call.lineno, hit[1], hit[2], root=receiver_root
            )
            return
        if kind == "intrinsic":
            _, effects, mutates_first, dotted = hit
            if dotted in _SEEDED_RNG_CTORS and (call.args or call.keywords):
                effects = effects - {RNG}
            for effect in effects:
                node.add_local(effect, call.lineno, f"calls {dotted}()")
            if mutates_first and args:
                first_root = _root_name(args[0])
                self._apply_receiver_mutation(
                    node, call.lineno, scope.kind_of(first_root), dotted,
                    root=first_root,
                )
            return
        if kind == "ctor":
            init = self._resolve_method(self.classes.get(hit[1]), "__init__")
            if init is not None:
                node.calls.append(
                    CallSite(
                        line=call.lineno, col=call.col_offset, callee=init,
                        text=text, arg_kinds=arg_kinds, arg_roots=arg_roots,
                        kw_names=kw_names, is_ctor=True, varargs=varargs,
                    )
                )
            # no project __init__ anywhere on the MRO: plain field
            # assignment (dataclasses, NamedTuple, Exception) — pure
            return
        if kind == "group":
            node.calls.append(
                CallSite(
                    line=call.lineno, col=call.col_offset,
                    callee=f"~{hit[1]}", text=text, arg_kinds=arg_kinds,
                    arg_roots=arg_roots, kw_names=kw_names,
                    receiver_kind=receiver_kind, receiver_root=receiver_root,
                    varargs=varargs,
                )
            )
            return
        # kind == "node"
        node.calls.append(
            CallSite(
                line=call.lineno, col=call.col_offset, callee=hit[1],
                text=text, arg_kinds=arg_kinds, arg_roots=arg_roots,
                kw_names=kw_names, receiver_kind=receiver_kind,
                receiver_root=receiver_root, varargs=varargs,
            )
        )

    def _apply_receiver_mutation(
        self, node: FunctionNode, line: int, kind: str, what: str,
        root: str | None = None,
    ) -> None:
        if kind == "param":
            node.add_local(
                MUTATES_ARG, line, f"mutates an argument via `{what}`"
            )
            if root is not None:
                node.mutated_params.add(root)
        elif kind == "global":
            node.add_local(
                MUTATES_GLOBAL, line, f"mutates module-level state via `{what}`"
            )
        elif kind == "self":
            node.add_local(MUTATES_STATE, line, f"mutates self state via `{what}`")

    def _record_parallel_site(
        self, node: FunctionNode, call: ast.Call, scope: _Scope
    ) -> None:
        task_expr: ast.expr | None = None
        if call.args:
            task_expr = call.args[0]
        else:
            for kw in call.keywords:
                if kw.arg == "fn":
                    task_expr = kw.value
                    break
        task_spec: str | None = None
        text = "<dynamic>"
        if task_expr is not None:
            chain = _attr_chain(task_expr)
            text = ".".join(chain) if chain else (
                "<lambda>" if isinstance(task_expr, ast.Lambda) else "<dynamic>"
            )
            hit = self.resolve_callable(task_expr, scope)
            if hit is not None and hit[0] == "node":
                task_spec = hit[1]
            elif isinstance(task_expr, ast.Lambda):
                child = self._make_lambda_node(
                    scope.module, task_expr, node, scope
                )
                task_spec = child.spec
        self.parallel_sites.append(
            ParallelSite(
                caller=node.spec, path=node.path, line=call.lineno,
                col=call.col_offset, task=task_spec, text=text,
                is_test=node.is_test,
            )
        )
        if task_spec is not None:
            # the task runs with elements of the mapped iterable; kinds
            # of the remaining arguments stand in for its inputs
            rest = list(call.args[1:]) + [kw.value for kw in call.keywords]
            node.calls.append(
                CallSite(
                    line=call.lineno, col=call.col_offset, callee=task_spec,
                    text=f"parallel_map({text})",
                    arg_kinds=tuple(
                        scope.kind_of(_root_name(a)) for a in rest
                    ),
                    varargs=True,
                )
            )

    # -- fixpoint ----------------------------------------------------------

    def _site_targets(self, site: CallSite) -> list[FunctionNode]:
        if site.callee.startswith("~"):
            members = self.methods_by_name.get(site.callee[1:], [])
            return [self.nodes[m] for m in members if m in self.nodes]
        callee = self.nodes.get(site.callee)
        return [callee] if callee is not None else []

    def propagate(self) -> None:
        changed = True
        while changed:
            changed = False
            for node in self.nodes.values():
                for site in node.calls:
                    for callee in self._site_targets(site):
                        effects, callee_unproven = _exported(callee)
                        for effect in effects:
                            translated, roots = _translate(
                                effect, site, callee
                            )
                            for out in translated:
                                if out not in node.effects:
                                    node.effects.add(out)
                                    node.origins[out] = (
                                        "call", site.line, callee.spec, effect,
                                    )
                                    changed = True
                            for root in roots:
                                if root not in node.mutated_params:
                                    node.mutated_params.add(root)
                                    changed = True
                        if callee_unproven and not node.unproven:
                            node.unproven = True
                            node.unproven_origin = (
                                "call", site.line, callee.spec,
                            )
                            changed = True


def _exported(node: FunctionNode) -> tuple[set[str], bool]:
    """What callers of ``node`` see: (effects, unproven)."""
    override = SPEC_EFFECT_OVERRIDES.get(node.spec)
    if override is not None:
        return set(override), False
    if node.declared is not None:
        # declarations are trust boundaries, but internal-state writes
        # still translate at call sites (they are not declarable)
        return set(node.declared) | (node.effects & {MUTATES_STATE}), False
    return node.effects, node.unproven


def _kind_to_effect(kind: str | None, root: str | None) -> tuple[str | None, str | None]:
    """Map an argument's root kind to the caller-side mutation effect."""
    if kind == "param":
        return MUTATES_ARG, root
    if kind == "global":
        return MUTATES_GLOBAL, None
    if kind == "self":
        return MUTATES_STATE, None
    return None, None


def _translate(
    effect: str, site: CallSite, callee: FunctionNode | None = None
) -> tuple[set[str], set[str]]:
    """Translate one exported callee effect across ``site``.

    Returns ``(caller effects, caller params now known to be mutated)``.
    """
    if effect == MUTATES_ARG:
        mparams = callee.mutated_params if callee is not None else set()
        if mparams and not site.varargs:
            # precise mode: we know *which* callee parameters mutate, so
            # judge only the arguments actually bound to them (a module
            # constant passed alongside a scratch rng must not harden
            # the whole call to MUTATES_GLOBAL)
            offset = 1 if callee.class_name is not None else 0
            n_pos = sum(1 for kw in site.kw_names if kw is None)
            out: set[str] = set()
            roots: set[str] = set()
            for pname in mparams:
                if offset and callee.params and pname == callee.params[0]:
                    if site.is_ctor:
                        continue  # fresh receiver, invisible to caller
                    eff, root = _kind_to_effect(
                        site.receiver_kind, site.receiver_root
                    )
                else:
                    idx = None
                    for i, kw in enumerate(site.kw_names):
                        if kw == pname:
                            idx = i
                            break
                    if idx is None and pname in callee.params:
                        pos = callee.params.index(pname) - offset
                        if 0 <= pos < n_pos:
                            idx = pos
                    if idx is None or idx >= len(site.arg_kinds):
                        # bound to its default: mutation of a shared
                        # default object — rare enough to concede
                        continue
                    eff, root = _kind_to_effect(
                        site.arg_kinds[idx], site.arg_roots[idx]
                    )
                if eff is not None:
                    out.add(eff)
                    if root is not None:
                        roots.add(root)
            return out, roots
        # unknown which parameters mutate: coarse all-arguments union
        kinds = set(site.arg_kinds)
        out = set()
        if "param" in kinds:
            out.add(MUTATES_ARG)
        if "global" in kinds:
            out.add(MUTATES_GLOBAL)
        if "self" in kinds:
            out.add(MUTATES_STATE)
        return out, set()
    if effect == MUTATES_STATE:
        if site.is_ctor:
            # the receiver is freshly constructed in the caller: its
            # internal-state writes are invisible outside the ctor
            return set(), set()
        if site.receiver_kind is not None:
            kinds = {site.receiver_kind}
        else:
            kinds = set(site.arg_kinds)
        out = set()
        if "global" in kinds:
            out.add(MUTATES_GLOBAL)
        if "param" in kinds or "self" in kinds:
            out.add(MUTATES_STATE)
        return out, set()
    return {effect}, set()


# --------------------------------------------------------------------------
# public API
# --------------------------------------------------------------------------


@dataclass
class WitnessStep:
    spec: str
    path: str
    line: int
    note: str


class CallGraph:
    """The built graph: query effect summaries and witness chains."""

    def __init__(
        self,
        nodes: dict[str, FunctionNode],
        modules: dict[str, ModuleInfo],
        parallel_sites: list[ParallelSite],
    ) -> None:
        self.nodes = nodes
        self.modules = modules
        self.parallel_sites = parallel_sites

    def node(self, spec: str) -> FunctionNode | None:
        return self.nodes.get(spec)

    def inferred(self, spec: str) -> frozenset[str] | None:
        node = self.nodes.get(spec)
        return node.public_effects() if node is not None else None

    def exported(self, spec: str) -> frozenset[str] | None:
        node = self.nodes.get(spec)
        if node is None:
            return None
        effects, _ = _exported(node)
        return frozenset(effects) & PUBLIC_EFFECTS

    def exported_unproven(self, spec: str) -> bool:
        node = self.nodes.get(spec)
        if node is None:
            return True
        return _exported(node)[1]

    def is_unproven(self, spec: str) -> bool:
        node = self.nodes.get(spec)
        return True if node is None else node.unproven

    def witness_chain(self, spec: str, effect: str) -> list[WitnessStep]:
        """The call chain from ``spec`` down to a local witness of ``effect``."""
        steps: list[WitnessStep] = []
        seen: set[tuple[str, str]] = set()
        current, eff = spec, effect
        while True:
            node = self.nodes.get(current)
            if node is None:
                break
            origin = node.origins.get(eff)
            if origin is None:
                note = (
                    f"declared @effects({eff})" if node.declared is not None
                    else f"intrinsic {eff}"
                )
                steps.append(
                    WitnessStep(current, node.path, node.line, note)
                )
                break
            if origin[0] == "local":
                steps.append(
                    WitnessStep(current, node.path, origin[1], origin[2])
                )
                break
            _, line, callee, callee_eff = origin
            steps.append(
                WitnessStep(
                    current, node.path, line,
                    f"calls {callee} [{callee_eff}]",
                )
            )
            if (callee, callee_eff) in seen:
                break
            seen.add((callee, callee_eff))
            current, eff = callee, callee_eff
        return steps

    def unproven_chain(self, spec: str) -> list[WitnessStep]:
        steps: list[WitnessStep] = []
        seen: set[str] = set()
        current = spec
        while True:
            node = self.nodes.get(current)
            if node is None or node.unproven_origin is None:
                break
            origin = node.unproven_origin
            if origin[0] == "local":
                steps.append(
                    WitnessStep(current, node.path, origin[1], origin[2])
                )
                break
            _, line, callee = origin
            steps.append(
                WitnessStep(current, node.path, line, f"calls {callee}")
            )
            if callee in seen:
                break
            seen.add(callee)
            current = callee
        return steps

    def explain(self, spec: str) -> str:
        """Human-readable summary + witness chains for one function."""
        node = self.nodes.get(spec)
        if node is None:
            known = ", ".join(sorted(self.nodes)[:8])
            return (
                f"no such function: {spec}\n"
                f"(specs look like repro.core.cost:storage_cost; "
                f"e.g. {known}, ...)"
            )
        lines = [f"{spec}  ({node.path}:{node.line})"]
        if node.declared is not None:
            lines.append(f"  declared: {effect_summary(node.declared)}")
        lines.append(f"  inferred: {effect_summary(node.effects)}")
        if node.effects & {MUTATES_STATE}:
            lines.append(
                "  (also mutates internal object state — benign controller "
                "state, translated per receiver/args at call sites)"
            )
        lines.append(
            "  status:   UNPROVEN (unresolved calls in closure)"
            if node.unproven else "  status:   proven"
        )
        for effect in EFFECT_NAMES:
            if effect not in node.effects:
                continue
            lines.append(f"  {effect}:")
            for step in self.witness_chain(spec, effect):
                lines.append(f"    {step.path}:{step.line}  {step.note}")
        if node.unproven:
            lines.append("  unproven via:")
            for step in self.unproven_chain(spec):
                lines.append(f"    {step.path}:{step.line}  {step.note}")
        return "\n".join(lines)


def build_graph(
    entries: Iterable[tuple[ast.Module, str, str, bool]],
) -> CallGraph:
    """Build the graph from ``(tree, posix_path, display_path, is_test)``
    entries; referenced ``repro.*`` modules not in ``entries`` are loaded
    from ``src/`` on disk so partial runs stay sound."""
    builder = _GraphBuilder()
    for tree, posix_path, display_path, is_test in entries:
        builder.add_module(tree, posix_path, display_path, is_test)
    builder.scan_all()
    builder.propagate()
    return CallGraph(builder.nodes, builder.modules, builder.parallel_sites)


_GRAPH_CACHE: tuple[tuple[int, ...], CallGraph] | None = None


def graph_for_contexts(ctxs: Sequence) -> CallGraph:
    """Memoized build over engine ``FileContext`` objects.

    The engine hands the *same* context objects to every project
    checker, so one lint run builds the graph exactly once no matter
    how many RL3xx rules are registered.
    """
    global _GRAPH_CACHE
    # hold strong references to the trees: an id()-only key would go
    # stale when a freed tree's address is reused by the next parse
    # (exactly what back-to-back lint_source calls do)
    trees = tuple(ctx.tree for ctx in ctxs)
    if (
        _GRAPH_CACHE is not None
        and len(_GRAPH_CACHE[0]) == len(trees)
        and all(a is b for a, b in zip(_GRAPH_CACHE[0], trees))
    ):
        return _GRAPH_CACHE[1]
    graph = build_graph(
        (ctx.tree, ctx.posix_path, ctx.display_path, ctx.is_test)
        for ctx in ctxs
    )
    _GRAPH_CACHE = (trees, graph)
    return graph


def graph_for_spec(spec: str) -> tuple[CallGraph, str | None]:
    """Build a graph rooted at the module of ``spec`` (CLI explain mode).

    Returns ``(graph, error)``; ``error`` is set when the module file
    cannot be found.
    """
    module = spec.partition(":")[0]
    rel = module.replace(".", "/")
    for candidate in (
        f"src/{rel}.py", f"src/{rel}/__init__.py",
        f"{rel}.py", f"{rel}/__init__.py",
    ):
        if os.path.isfile(candidate):
            try:
                with open(candidate, encoding="utf-8") as handle:
                    tree = ast.parse(handle.read(), filename=candidate)
            except (OSError, SyntaxError) as exc:
                return CallGraph({}, {}, []), f"cannot parse {candidate}: {exc}"
            graph = build_graph([(tree, candidate, candidate, False)])
            return graph, None
    return (
        CallGraph({}, {}, []),
        f"cannot locate module {module!r} (looked under src/ and cwd)",
    )

"""``sanitize-report`` — diff two runtime seed-lineage ledgers.

The runtime complement to RL201/RL202: two runs of the same command
(serial vs ``--jobs N``, flat vs event engine) must derive exactly the
same lineages and charge exactly the same number of draws to each.
``REPRO_SANITIZE=1 REPRO_SANITIZE_OUT=<path>`` makes any repro CLI
write its ledger at exit (see :mod:`repro.determinism`); this command
compares two such files and fails on:

* **lineage collision** — two distinct lineages in one ledger derived
  the same 64-bit seed (astronomically unlikely unless someone bypassed
  ``derive_seed``);
* **lineage divergence** — a lineage derived in one run but not the
  other (a worker derived a stream the serial run never did, or vice
  versa);
* **seed mismatch** — one lineage key mapping to different seeds
  (impossible through ``derive_seed``; means a hand-built ledger or a
  version skew);
* **draw divergence** — the same lineage drew a different number of
  variates in the two runs (an execution path consumed randomness it
  should not have).

Derivation *counts* are reported but not failed on: workers re-derive
their streams per item, so a sharded run legitimately derives more
often than a serial one — what must match is *which* lineages exist
and *how much* randomness each consumed.

Exit codes: 0 = equivalent, 1 = divergence/collision, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Mapping, Sequence

__all__ = ["load_ledger", "compare_ledgers", "main"]

#: required per-entry fields in a version-1 ledger file
_ENTRY_FIELDS = ("seed", "derivations", "draws")


class LedgerFormatError(ValueError):
    """The file is not a version-1 sanitizer ledger."""


def load_ledger(path: str) -> dict[str, dict[str, int]]:
    """Read and validate a ledger JSON written by ``write_ledger``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except json.JSONDecodeError as exc:
        raise LedgerFormatError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != 1:
        raise LedgerFormatError(
            f"{path}: not a version-1 sanitizer ledger "
            "(expected {'version': 1, 'entries': {...}})"
        )
    entries = payload.get("entries")
    if not isinstance(entries, dict):
        raise LedgerFormatError(f"{path}: 'entries' must be an object")
    validated: dict[str, dict[str, int]] = {}
    for key, entry in entries.items():
        if not isinstance(entry, dict) or not all(
            isinstance(entry.get(f), int) for f in _ENTRY_FIELDS
        ):
            raise LedgerFormatError(
                f"{path}: entry {key!r} must have integer "
                f"{', '.join(_ENTRY_FIELDS)}"
            )
        validated[key] = {f: int(entry[f]) for f in _ENTRY_FIELDS}
    return validated


def _collisions(entries: Mapping[str, Mapping[str, int]]) -> list[str]:
    by_seed: dict[int, str] = {}
    problems: list[str] = []
    for key in sorted(entries):
        seed = entries[key]["seed"]
        if seed in by_seed:
            problems.append(
                f"lineage collision: {by_seed[seed]!r} and {key!r} both "
                f"derived seed {seed}"
            )
        else:
            by_seed[seed] = key
    return problems


def compare_ledgers(
    a: Mapping[str, Mapping[str, int]],
    b: Mapping[str, Mapping[str, int]],
    label_a: str = "A",
    label_b: str = "B",
) -> list[str]:
    """Human-readable failure lines; empty means the runs are equivalent."""
    problems: list[str] = []
    for label, entries in ((label_a, a), (label_b, b)):
        problems.extend(f"[{label}] {line}" for line in _collisions(entries))
    only_a = sorted(set(a) - set(b))
    only_b = sorted(set(b) - set(a))
    for key in only_a:
        problems.append(f"lineage {key!r} derived only in {label_a}")
    for key in only_b:
        problems.append(f"lineage {key!r} derived only in {label_b}")
    for key in sorted(set(a) & set(b)):
        ea, eb = a[key], b[key]
        if ea["seed"] != eb["seed"]:
            problems.append(
                f"lineage {key!r}: seed {ea['seed']} in {label_a} vs "
                f"{eb['seed']} in {label_b}"
            )
        if ea["draws"] != eb["draws"]:
            problems.append(
                f"lineage {key!r}: {ea['draws']} draws in {label_a} vs "
                f"{eb['draws']} in {label_b}"
            )
    return problems


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint sanitize-report",
        description=(
            "Diff two REPRO_SANITIZE ledgers; fail on lineage collision, "
            "lineage/seed divergence, or draw-count divergence."
        ),
    )
    parser.add_argument("ledger_a", help="first ledger JSON (e.g. serial run)")
    parser.add_argument(
        "ledger_b", help="second ledger JSON (e.g. --jobs N run)"
    )
    parser.add_argument(
        "--label-a", default="A", help="display name for the first run"
    )
    parser.add_argument(
        "--label-b", default="B", help="display name for the second run"
    )
    args = parser.parse_args(argv)

    try:
        ledger_a = load_ledger(args.ledger_a)
        ledger_b = load_ledger(args.ledger_b)
    except (OSError, LedgerFormatError) as exc:
        print(f"sanitize-report: {exc}", file=sys.stderr)
        return 2

    problems = compare_ledgers(
        ledger_a, ledger_b, label_a=args.label_a, label_b=args.label_b
    )
    if problems:
        for line in problems:
            print(line)
        print(
            f"sanitize-report: {len(problems)} divergence"
            f"{'s' if len(problems) != 1 else ''}",
            file=sys.stderr,
        )
        return 1
    shared = len(set(ledger_a) & set(ledger_b))
    draws = sum(entry["draws"] for entry in ledger_a.values())
    print(
        f"sanitize-report: OK — {shared} lineages, {draws} draws, "
        "no collisions, runs equivalent"
    )
    return 0

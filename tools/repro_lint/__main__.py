"""``python -m tools.repro_lint`` dispatch."""

import sys

from .cli import main

sys.exit(main())

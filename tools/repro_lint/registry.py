"""Pluggable checker registry.

A checker is a class with a ``rule`` id, a one-line ``description``, an
``applies_to(ctx)`` scope predicate, and a ``check(ctx)`` generator of
:class:`~tools.repro_lint.diagnostics.Diagnostic`.  Decorating it with
:func:`register` makes the CLI pick it up; nothing else is needed to add
a rule.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Type, TYPE_CHECKING

from .diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import FileContext


class Checker:
    """Base class for repro-lint rules."""

    #: rule identifier, e.g. ``"RL001"``
    rule: str = ""
    #: short human-readable name shown by ``--list-rules``
    name: str = ""
    #: one-line description of the protected invariant
    description: str = ""

    def applies_to(self, ctx: "FileContext") -> bool:
        """Whether this rule runs on ``ctx`` at all (default: every file)."""
        return True

    def check(self, ctx: "FileContext") -> Iterator[Diagnostic]:
        """Yield diagnostics for ``ctx``; must not mutate it."""
        raise NotImplementedError

    def diagnostic(
        self, ctx: "FileContext", line: int, col: int, message: str
    ) -> Diagnostic:
        """Build a diagnostic for this rule at a location in ``ctx``."""
        return Diagnostic(
            path=ctx.display_path, line=line, col=col, rule=self.rule, message=message
        )


class ProjectChecker(Checker):
    """A checker whose rule spans files (e.g. cross-module contracts).

    The engine feeds every linted file through :meth:`collect`, then
    calls :meth:`finalize` once at the end of the run; diagnostics may
    point at any collected file.  ``check`` is unused for these rules.
    """

    def check(self, ctx: "FileContext") -> Iterator[Diagnostic]:
        return iter(())

    def collect(self, ctx: "FileContext") -> None:
        """Record whatever this rule needs from one file."""
        raise NotImplementedError

    def finalize(self) -> Iterator[Diagnostic]:
        """Yield diagnostics after every file has been collected."""
        raise NotImplementedError


_REGISTRY: dict[str, Type[Checker]] = {}


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not cls.rule:
        raise ValueError(f"{cls.__name__} has no rule id")
    if cls.rule in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule}")
    _REGISTRY[cls.rule] = cls
    return cls


def all_checkers(select: Iterable[str] | None = None) -> list[Checker]:
    """Instantiate registered checkers, optionally restricted to ``select``."""
    # Import for side effect: checker modules self-register on import.
    from . import checkers  # noqa: F401

    if select is not None:
        wanted = set(select)
        unknown = wanted - set(_REGISTRY)
        if unknown:
            raise KeyError(f"unknown rule(s): {', '.join(sorted(unknown))}")
        rules = [r for r in sorted(_REGISTRY) if r in wanted]
    else:
        rules = sorted(_REGISTRY)
    return [_REGISTRY[rule]() for rule in rules]

"""Built-in repro-lint checkers.

Importing this package registers every rule module; adding a checker
means writing a module here and importing it below.
"""

from . import determinism  # noqa: F401
from . import effects  # noqa: F401
from . import float_equality  # noqa: F401
from . import ordering  # noqa: F401
from . import parallel_safety  # noqa: F401
from . import purity  # noqa: F401
from . import seed_lineage  # noqa: F401
from . import twin_contracts  # noqa: F401
from . import units_discipline  # noqa: F401

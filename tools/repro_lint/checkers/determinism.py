"""RL001 — determinism inside the planning and replay subsystems.

Planning (``schemes/``), simulation (``simulate/``, ``pfs/``), the
online controller (``online/``), the tenancy service (``tenancy/``),
and the seeded generators (``faults/``, ``workloads/``) must produce
identical output for identical input: the paper's evaluation depends on
replaying the same trace through the same plan, and the online feedback
loop compounds any run-to-run jitter into divergent layouts.
Wall-clock reads and unseeded (or magic-literal-seeded) RNGs are the
two ways nondeterminism leaks in.

Allowed: ``np.random.default_rng(SEED_NAME)`` / ``random.Random(SEED)``
where the seed is a *named* value routed through configuration (see
``repro.config.DEFAULT_SAMPLE_SEED``) — the name makes the seed
auditable and overridable, which an inline literal is not.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..registry import Checker, register

_CLOCK_ATTRS = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter"},
    "datetime": {"now", "utcnow", "today"},
    "date": {"now", "utcnow", "today"},
}

_GLOBAL_RANDOM_FUNCS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "seed",
    "gauss",
    "normalvariate",
}

_NP_RANDOM_FUNCS = {
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "seed",
}


def _attr_chain(node: ast.expr) -> list[str]:
    """``np.random.default_rng`` -> ``["np", "random", "default_rng"]``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


@register
class DeterminismChecker(Checker):
    rule = "RL001"
    name = "determinism"
    description = (
        "no wall-clock reads or unseeded/magic-seeded RNGs in "
        "simulate/, pfs/, online/, schemes/, tenancy/, faults/, workloads/"
    )

    def applies_to(self, ctx) -> bool:
        return not ctx.is_test and ctx.in_dir(
            "simulate", "pfs", "online", "schemes", "tenancy", "faults", "workloads"
        )

    def check(self, ctx) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if not chain:
                continue
            yield from self._check_call(ctx, node, chain)

    def _check_call(
        self, ctx, node: ast.Call, chain: list[str]
    ) -> Iterator[Diagnostic]:
        root, leaf = chain[0], chain[-1]
        if len(chain) >= 2 and root in _CLOCK_ATTRS and leaf in _CLOCK_ATTRS[root]:
            yield self.diagnostic(
                ctx,
                node.lineno,
                node.col_offset,
                f"wall-clock read `{'.'.join(chain)}()` in a deterministic "
                "subsystem; take timestamps from the trace instead",
            )
            return
        if len(chain) == 2 and root == "random" and leaf in _GLOBAL_RANDOM_FUNCS:
            yield self.diagnostic(
                ctx,
                node.lineno,
                node.col_offset,
                f"global-state RNG `random.{leaf}()`; use a seeded "
                "`random.Random(repro.config.DEFAULT_SAMPLE_SEED)` instance",
            )
            return
        if len(chain) >= 3 and chain[-2] == "random" and leaf in _NP_RANDOM_FUNCS:
            yield self.diagnostic(
                ctx,
                node.lineno,
                node.col_offset,
                f"legacy global `{'.'.join(chain)}()`; use a generator from "
                "`np.random.default_rng(repro.config.DEFAULT_SAMPLE_SEED)`",
            )
            return
        if leaf in {"default_rng", "Random", "RandomState"}:
            yield from self._check_rng_seed(ctx, node, chain)

    def _check_rng_seed(
        self, ctx, node: ast.Call, chain: list[str]
    ) -> Iterator[Diagnostic]:
        ctor = ".".join(chain)
        seed = node.args[0] if node.args else None
        if seed is None:
            for kw in node.keywords:
                if kw.arg in {"seed", "x"}:
                    seed = kw.value
        if seed is None:
            yield self.diagnostic(
                ctx,
                node.lineno,
                node.col_offset,
                f"unseeded `{ctor}()`; pass a named seed constant "
                "(e.g. `repro.config.DEFAULT_SAMPLE_SEED`)",
            )
        elif isinstance(seed, ast.Constant):
            yield self.diagnostic(
                ctx,
                node.lineno,
                node.col_offset,
                f"inline literal seed in `{ctor}({seed.value!r})`; route the "
                "seed through a named constant so it is auditable "
                "(e.g. `repro.config.DEFAULT_SAMPLE_SEED`)",
            )

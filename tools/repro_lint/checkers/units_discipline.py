"""RL002 — byte-quantity literals must use ``repro.units`` constants.

Stripe widths, offsets, and request sizes flow through every layer of
the pipeline (Eq. 2 cost evaluation, DRT extents, RSSD search bounds).
A raw ``65536`` in a stripe position is ambiguous — bytes? KiB? — and
unit drift between layers corrupts the cost model silently.  Any
power-of-1024-ish literal bound to a byte-quantity name must be spelled
with ``units.KiB`` / ``units.MiB`` / ``units.GiB``.

Also flags arithmetic or comparison mixing ``*_bytes`` values with
``*_kb`` / ``*_mb`` values without an explicit conversion.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..diagnostics import Diagnostic
from ..registry import Checker, register

#: names that denote byte quantities (word-boundary match on ``_`` splits)
_BYTE_NAME_RE = re.compile(
    r"(^|_)(stripe|stripes|offset|size|sizes|bytes|length)(_|$)", re.IGNORECASE
)

#: literal threshold: small counts (e.g. ``n_jobs=8``) are never flagged
_MIN_LITERAL = 4096

_UNIT_SUFFIXES = {
    "bytes": ("_bytes",),
    "KiB": ("_kb", "_kib"),
    "MiB": ("_mb", "_mib"),
    "GiB": ("_gb", "_gib"),
}


def _unit_class(name: str) -> str | None:
    lowered = name.lower()
    for unit, suffixes in _UNIT_SUFFIXES.items():
        if lowered.endswith(suffixes):
            return unit
    return None


def _const_value(node: ast.expr) -> int | None:
    """Evaluate literal-only integer arithmetic (``64 * 1024``), else None."""
    if isinstance(node, ast.Constant):
        return node.value if isinstance(node.value, int) else None
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Mult, ast.Add, ast.Sub, ast.Pow)
    ):
        left = _const_value(node.left)
        right = _const_value(node.right)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if right <= 64:  # Pow; cap to avoid absurd evaluation
            return left**right
    return None


def _is_raw_byte_literal(node: ast.expr) -> int | None:
    """The literal's value when it should have been a units constant."""
    value = _const_value(node)
    if value is not None and value >= _MIN_LITERAL and value % 1024 == 0:
        return value
    return None


def _expr_unit(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return _unit_class(node.id)
    if isinstance(node, ast.Attribute):
        return _unit_class(node.attr)
    return None


@register
class UnitsDisciplineChecker(Checker):
    rule = "RL002"
    name = "units-discipline"
    description = (
        "byte quantities use repro.units constants, not raw literals; "
        "no *_bytes/*_kb mixing without conversion"
    )

    def applies_to(self, ctx) -> bool:
        parts = ctx.posix_path.split("/")
        return not ctx.is_test and "src" in parts

    def check(self, ctx) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                yield from self._check_assignment(ctx, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_keywords(ctx, node)
            elif isinstance(node, (ast.BinOp, ast.Compare)):
                yield from self._check_unit_mixing(ctx, node)

    # -- raw literals in byte positions ---------------------------------

    def _flag_literal(self, ctx, node: ast.expr, name: str) -> Iterator[Diagnostic]:
        targets = [node]
        if isinstance(node, (ast.Tuple, ast.List)):
            targets = list(node.elts)
        for target in targets:
            value = _is_raw_byte_literal(target)
            if value is not None:
                if value % (1024 * 1024) == 0:
                    hint = f"{value // (1024 * 1024)} * MiB"
                else:
                    hint = f"{value // 1024} * KiB"
                yield self.diagnostic(
                    ctx,
                    target.lineno,
                    target.col_offset,
                    f"raw byte literal {value} bound to `{name}`; use "
                    f"repro.units constants (e.g. `{hint}`)",
                )

    def _check_assignment(
        self, ctx, node: ast.Assign | ast.AnnAssign
    ) -> Iterator[Diagnostic]:
        if node.value is None:
            return
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and _BYTE_NAME_RE.search(target.id):
                yield from self._flag_literal(ctx, node.value, target.id)

    def _check_defaults(
        self, ctx, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Diagnostic]:
        pos_args = node.args.posonlyargs + node.args.args
        for arg, default in zip(reversed(pos_args), reversed(node.args.defaults)):
            if _BYTE_NAME_RE.search(arg.arg):
                yield from self._flag_literal(ctx, default, arg.arg)
        for arg, kw_default in zip(node.args.kwonlyargs, node.args.kw_defaults):
            if kw_default is not None and _BYTE_NAME_RE.search(arg.arg):
                yield from self._flag_literal(ctx, kw_default, arg.arg)

    def _check_keywords(self, ctx, node: ast.Call) -> Iterator[Diagnostic]:
        for kw in node.keywords:
            if kw.arg is not None and _BYTE_NAME_RE.search(kw.arg):
                yield from self._flag_literal(ctx, kw.value, kw.arg)

    # -- *_bytes vs *_kb mixing -----------------------------------------

    def _check_unit_mixing(
        self, ctx, node: ast.BinOp | ast.Compare
    ) -> Iterator[Diagnostic]:
        if isinstance(node, ast.BinOp):
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                return
            operands = [node.left, node.right]
        else:
            operands = [node.left, *node.comparators]
        units = {(u, o) for o in operands if (u := _expr_unit(o)) is not None}
        seen = {u for u, _ in units}
        if len(seen) > 1:
            yield self.diagnostic(
                ctx,
                node.lineno,
                node.col_offset,
                "mixing values in different units ("
                + ", ".join(sorted(seen))
                + ") without conversion; convert via repro.units first",
            )

"""RL101–RL104 — twin contracts: fast paths must equal their references.

The repo's performance kernels come in *twins*: a vectorized or
event-free fast path (``replay_flat``, ``batch_costs_grid``,
``translate_many``, …) promising results identical to a scalar
reference path.  ``repro.contracts.twin_of`` declares each pair and
exactly how the two signatures relate; these rules verify the
declarations at the AST level, across modules:

* **RL101** — signature parity: every reference parameter exists on the
  twin (possibly renamed via ``param_map``) or is listed in
  ``unsupported``; every twin-only parameter is declared ``twin_only``.
* **RL102** — config-flag parity: a ``repro.config`` value read by one
  side of the pair but not the other must be named in
  ``fallback_flags``, else the twins can diverge under configuration.
* **RL103** — registry completeness: a function whose name matches the
  fast-path conventions (``*_flat``, ``*_grid``, ``*_many``,
  ``batch_*``) must either carry ``@twin_of`` or be the reference of a
  registered contract.
* **RL104** — contract well-formedness: ``twin_of`` arguments must be
  literal constants and the reference spec must resolve to a real
  definition (in the linted files, or on disk under ``src/``).

These are *project* rules: every file is collected first and the pairs
are resolved at the end of the run, so argument order never matters and
single-file (pre-commit) runs fall back to resolving references from
disk.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Iterator, Mapping

from ..diagnostics import Diagnostic
from ..registry import ProjectChecker, register

#: naming conventions that mark a function as a fast path (RL103)
_TWIN_SUFFIXES = ("_columnar", "_flat", "_grid", "_many")
_TWIN_PREFIXES = ("batch_",)

#: must mirror ``repro.contracts.TWIN_KINDS`` (asserted by the test suite)
_TWIN_KINDS = ("bit_identical", "reduction")

_CACHE_KEY = "twin_contracts:file_info"


@dataclass
class ParsedContract:
    """One ``@twin_of(...)`` decoration, read off the AST."""

    line: int
    col: int
    #: positional reference spec, or ``None`` if not a string literal
    reference: str | None = None
    kind: str = "bit_identical"
    unsupported: tuple[str, ...] = ()
    twin_only: tuple[str, ...] = ()
    param_map: Mapping[str, str] = None  # type: ignore[assignment]
    fallback_flags: tuple[str, ...] = ()
    #: False when any argument failed to parse as a literal constant
    literal: bool = True

    def __post_init__(self) -> None:
        if self.param_map is None:
            self.param_map = {}


@dataclass
class FunctionInfo:
    """What the twin rules need to know about one ``def``."""

    path: str
    module: str
    qualname: str
    name: str
    line: int
    col: int
    #: declared parameters, ``self``/``cls`` stripped for methods
    params: tuple[str, ...]
    #: ``repro.config`` names read anywhere in the body
    config_reads: frozenset[str]
    contract: ParsedContract | None
    nested: bool
    is_test: bool

    @property
    def spec(self) -> str:
        return f"{self.module}:{self.qualname}"


def _module_name(posix_path: str) -> str:
    """Dotted module for a source path, e.g. ``src/repro/pfs/flat.py``
    -> ``repro.pfs.flat``; empty when the path has no ``src`` segment."""
    parts = posix_path.split("/")
    if "src" not in parts:
        return ""
    idx = len(parts) - 1 - parts[::-1].index("src")
    mod_parts = parts[idx + 1 :]
    if not mod_parts or not mod_parts[-1].endswith(".py"):
        return ""
    mod_parts[-1] = mod_parts[-1][: -len(".py")]
    if mod_parts[-1] == "__init__":
        mod_parts = mod_parts[:-1]
    return ".".join(mod_parts)


def _attr_chain(node: ast.expr) -> list[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


def _config_aliases(tree: ast.Module) -> tuple[dict[str, str], set[str]]:
    """How this module can reach ``repro.config`` values.

    Returns ``(direct, modules)``: ``direct`` maps local names to the
    config constant they alias (``from ..config import X [as Y]``);
    ``modules`` holds local names bound to the config *module* itself
    (``from .. import config``, ``import repro.config as cfg``), whose
    attribute reads are config reads.
    """
    direct: dict[str, str] = {}
    modules: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            is_config_module = (node.module or "").split(".")[-1:] == ["config"] and (
                node.level > 0 or (node.module or "").startswith("repro")
            )
            if is_config_module:
                for alias in node.names:
                    direct[alias.asname or alias.name] = alias.name
            elif node.module in ("repro", None) or node.level > 0:
                for alias in node.names:
                    if alias.name == "config":
                        modules.add(alias.asname or "config")
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro.config" and alias.asname:
                    modules.add(alias.asname)
    return direct, modules


def _config_reads(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    direct: dict[str, str],
    modules: set[str],
) -> frozenset[str]:
    reads: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and node.id in direct:
            reads.add(direct[node.id])
        elif isinstance(node, ast.Attribute):
            chain = _attr_chain(node.value)
            if chain and ".".join(chain) in (
                set(modules) | {"repro.config"}
            ):
                reads.add(node.attr)
    return frozenset(reads)


def _parse_contract(call: ast.Call) -> ParsedContract:
    parsed = ParsedContract(line=call.lineno, col=call.col_offset)
    if call.args and isinstance(call.args[0], ast.Constant) and isinstance(
        call.args[0].value, str
    ):
        parsed.reference = call.args[0].value
    elif call.args:
        parsed.literal = False
    for kw in call.keywords:
        try:
            value = ast.literal_eval(kw.value)
        except ValueError:
            parsed.literal = False
            continue
        if kw.arg == "kind":
            parsed.kind = value
        elif kw.arg == "unsupported":
            parsed.unsupported = tuple(value)
        elif kw.arg == "twin_only":
            parsed.twin_only = tuple(value)
        elif kw.arg == "param_map":
            parsed.param_map = dict(value)
        elif kw.arg == "fallback_flags":
            parsed.fallback_flags = tuple(value)
    return parsed


def _twin_decorator(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> ParsedContract | None:
    for dec in fn.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        chain = _attr_chain(dec.func)
        if chain and chain[-1] == "twin_of":
            return _parse_contract(dec)
    return None


def _params_of(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, in_class: bool
) -> tuple[str, ...]:
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if in_class and names and names[0] in ("self", "cls"):
        names = names[1:]
    return tuple(names)


def extract_functions(
    tree: ast.Module, posix_path: str, display_path: str, is_test: bool
) -> list[FunctionInfo]:
    """Every ``def`` in a module, with qualnames and contract parses."""
    module = _module_name(posix_path)
    direct, config_modules = _config_aliases(tree)
    out: list[FunctionInfo] = []

    def visit(body: list[ast.stmt], prefix: str, in_func: bool) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}" if prefix else node.name
                out.append(
                    FunctionInfo(
                        path=display_path,
                        module=module,
                        qualname=qualname,
                        name=node.name,
                        line=node.lineno,
                        col=node.col_offset,
                        params=_params_of(node, in_class="." in qualname),
                        config_reads=_config_reads(node, direct, config_modules),
                        contract=_twin_decorator(node),
                        nested=in_func,
                        is_test=is_test,
                    )
                )
                visit(node.body, f"{qualname}.", True)
            elif isinstance(node, ast.ClassDef):
                qualname = f"{prefix}{node.name}" if prefix else node.name
                visit(node.body, f"{qualname}.", in_func)

    visit(tree.body, "", False)
    return out


def _file_info(ctx) -> list[FunctionInfo]:
    info = ctx.cache.get(_CACHE_KEY)
    if info is None:
        info = extract_functions(
            ctx.tree, ctx.posix_path, ctx.display_path, ctx.is_test
        )
        ctx.cache[_CACHE_KEY] = info
    return info


class _Index:
    """Resolves ``module:qualname`` specs against collected files, with a
    disk fallback for single-file runs."""

    def __init__(self, infos: list[FunctionInfo]) -> None:
        self._by_spec: dict[str, FunctionInfo] = {}
        self._modules = {info.module for info in infos if info.module}
        for info in infos:
            if info.module and not info.nested:
                self._by_spec.setdefault(info.spec, info)
        self._disk_cache: dict[str, dict[str, FunctionInfo]] = {}

    def resolve(self, spec: str) -> FunctionInfo | None:
        hit = self._by_spec.get(spec)
        if hit is not None:
            return hit
        module, _, qualname = spec.partition(":")
        if module in self._modules:
            return None  # module was linted; the def genuinely isn't there
        return self._load_module(module).get(qualname)

    def _load_module(self, module: str) -> dict[str, FunctionInfo]:
        cached = self._disk_cache.get(module)
        if cached is not None:
            return cached
        defs: dict[str, FunctionInfo] = {}
        rel = module.replace(".", "/")
        for candidate in (f"src/{rel}.py", f"src/{rel}/__init__.py"):
            if not os.path.isfile(candidate):
                continue
            try:
                with open(candidate, encoding="utf-8") as handle:
                    tree = ast.parse(handle.read(), filename=candidate)
            except (OSError, SyntaxError):
                break
            for info in extract_functions(tree, candidate, candidate, False):
                if not info.nested:
                    defs.setdefault(info.qualname, info)
            break
        self._disk_cache[module] = defs
        return defs


class _TwinRule(ProjectChecker):
    """Shared collection for the RL1xx family."""

    def __init__(self) -> None:
        self._infos: list[FunctionInfo] = []

    def collect(self, ctx) -> None:
        self._infos.extend(_file_info(ctx))

    def _contract_sites(self) -> list[FunctionInfo]:
        return [info for info in self._infos if info.contract is not None]

    def _index(self) -> _Index:
        return _Index(self._infos)

    def at(self, info: FunctionInfo, line: int, col: int, message: str) -> Diagnostic:
        return Diagnostic(
            path=info.path, line=line, col=col, rule=self.rule, message=message
        )

    def _resolved_pairs(self) -> Iterator[tuple[FunctionInfo, FunctionInfo]]:
        """(twin, reference) for every well-formed, resolvable contract."""
        index = self._index()
        for twin in self._contract_sites():
            contract = twin.contract
            if not contract.literal or contract.reference is None:
                continue
            if contract.reference.count(":") != 1:
                continue
            ref = index.resolve(contract.reference)
            if ref is not None:
                yield twin, ref


@register
class TwinSignatureParity(_TwinRule):
    rule = "RL101"
    name = "twin-signature-parity"
    description = (
        "a twin's signature must cover its reference's parameters, "
        "modulo the declared param_map/unsupported/twin_only sets"
    )

    def finalize(self) -> Iterator[Diagnostic]:
        for twin, ref in self._resolved_pairs():
            contract = twin.contract
            line, col = contract.line, contract.col
            ref_params = set(ref.params)
            twin_params = set(twin.params)

            for p in contract.unsupported:
                if p not in ref_params:
                    yield self.at(
                        twin, line, col,
                        f"unsupported parameter {p!r} is not a parameter of "
                        f"reference {ref.spec}",
                    )
            for key, value in sorted(contract.param_map.items()):
                if key not in ref_params:
                    yield self.at(
                        twin, line, col,
                        f"param_map key {key!r} is not a parameter of "
                        f"reference {ref.spec}",
                    )
                if value not in twin_params:
                    yield self.at(
                        twin, line, col,
                        f"param_map value {value!r} is not a parameter of "
                        f"twin {twin.spec}",
                    )
            for p in contract.twin_only:
                if p not in twin_params:
                    yield self.at(
                        twin, line, col,
                        f"twin_only parameter {p!r} is not a parameter of "
                        f"twin {twin.spec}",
                    )

            mapped = {contract.param_map.get(p, p) for p in ref.params}
            for p in ref.params:
                target = contract.param_map.get(p, p)
                if p in contract.unsupported:
                    if target in twin_params:
                        yield self.at(
                            twin, line, col,
                            f"parameter {p!r} is declared unsupported but "
                            f"present on twin {twin.spec}",
                        )
                    continue
                if target not in twin_params:
                    yield self.at(
                        twin, line, col,
                        f"reference parameter {p!r} missing on twin "
                        f"{twin.spec}; add it, rename it via param_map=, or "
                        "declare it unsupported= (with a runtime fallback)",
                    )
            for p in twin.params:
                if p not in mapped and p not in contract.twin_only:
                    yield self.at(
                        twin, line, col,
                        f"twin parameter {p!r} is absent from reference "
                        f"{ref.spec}; declare it twin_only= or add it to "
                        "the reference",
                    )


@register
class TwinConfigParity(_TwinRule):
    rule = "RL102"
    name = "twin-config-parity"
    description = (
        "a repro.config value read by one side of a twin pair only "
        "must be declared in fallback_flags"
    )

    def finalize(self) -> Iterator[Diagnostic]:
        for twin, ref in self._resolved_pairs():
            contract = twin.contract
            allowed = set(contract.fallback_flags)
            for flag in sorted(twin.config_reads - ref.config_reads - allowed):
                yield self.at(
                    twin, contract.line, contract.col,
                    f"config flag {flag!r} read by twin {twin.spec} but not "
                    f"by reference {ref.spec}; mirror the branch or declare "
                    "it in fallback_flags=",
                )
            for flag in sorted(ref.config_reads - twin.config_reads - allowed):
                yield self.at(
                    twin, contract.line, contract.col,
                    f"config flag {flag!r} read by reference {ref.spec} but "
                    f"not by twin {twin.spec}; mirror the branch or declare "
                    "it in fallback_flags=",
                )


@register
class TwinRegistryCompleteness(_TwinRule):
    rule = "RL103"
    name = "twin-registry-completeness"
    description = (
        "functions named like fast paths (*_flat, *_grid, *_many, "
        "batch_*) must be registered with @twin_of or serve as a "
        "contract's reference"
    )

    def finalize(self) -> Iterator[Diagnostic]:
        references = {
            info.contract.reference
            for info in self._contract_sites()
            if info.contract.reference is not None
        }
        for info in self._infos:
            if info.is_test or info.nested or not info.module:
                continue
            name = info.name
            if not (
                name.endswith(_TWIN_SUFFIXES) or name.startswith(_TWIN_PREFIXES)
            ):
                continue
            if info.contract is not None or info.spec in references:
                continue
            yield self.at(
                info, info.line, info.col,
                f"{name!r} is named like a fast path but has no twin "
                "contract; decorate it with @twin_of or register a "
                "contract naming it as reference",
            )


@register
class TwinContractWellFormed(_TwinRule):
    rule = "RL104"
    name = "twin-contract-well-formed"
    description = (
        "twin_of arguments must be literals and the reference spec "
        "must resolve to a real definition"
    )

    def finalize(self) -> Iterator[Diagnostic]:
        index = self._index()
        for twin in self._contract_sites():
            contract = twin.contract
            line, col = contract.line, contract.col
            if not contract.literal:
                yield self.at(
                    twin, line, col,
                    "twin_of arguments must be literal constants so the "
                    "contract is statically checkable",
                )
            if contract.reference is None:
                yield self.at(
                    twin, line, col,
                    "twin_of reference must be a 'module:qualname' string "
                    "literal",
                )
                continue
            if contract.reference.count(":") != 1 or not all(
                contract.reference.split(":")
            ):
                yield self.at(
                    twin, line, col,
                    f"malformed twin reference {contract.reference!r} "
                    "(expected 'module:qualname')",
                )
                continue
            if contract.kind not in _TWIN_KINDS:
                yield self.at(
                    twin, line, col,
                    f"unknown twin contract kind {contract.kind!r} "
                    f"(expected one of {', '.join(_TWIN_KINDS)})",
                )
            if index.resolve(contract.reference) is None:
                yield self.at(
                    twin, line, col,
                    f"twin reference {contract.reference!r} does not resolve "
                    "to a definition (checked linted files and src/ on disk)",
                )

"""RL201–RL203 — seed lineage: every stream derived, none aliased.

:mod:`repro.determinism` centralizes RNG stream derivation:
``derive_seed(domain, *indices, base=...)`` hashes a
:class:`~repro.determinism.SeedDomain` tag, the root seed, and the
indices into a collision-free 64-bit seed, and ``derive_rng`` is the
only sanctioned generator constructor in the seeded subsystems.  These
rules make that discipline compiler-grade:

* **RL201** — RNG construction outside the registry: a
  ``default_rng``/``Random``/``RandomState`` call in a seeded package
  whose seed argument is not a literal ``derive_seed(...)`` call.
  List-seeding (``default_rng([seed, k])``) and named scalar seeds both
  count — only the central derivation proves non-aliasing.
* **RL202** — lineage aliasing, project-wide: the ``SeedDomain`` enum
  must map distinct members to distinct tag strings, and no two call
  sites may derive from the same ``(domain, index-arity)`` lineage —
  two such sites can hand out the *same stream* for overlapping
  indices.  One shared helper (one call site) or a second domain are
  the fixes.
* **RL203** — RNG crossing a ``parallel_map`` task boundary: a
  generator object (or a closure/partial capturing one) passed into
  ``parallel_map`` would be pickled and replayed identically in every
  worker; streams must instead be *derived inside the worker* from the
  picklable spec (which is what makes sharded builds bit-identical to
  serial ones).

RL201/RL203 are per-file dataflow passes; RL202 is a
:class:`~tools.repro_lint.registry.ProjectChecker` so call sites in
different modules still collide.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from ..diagnostics import Diagnostic
from ..engine import FileContext
from ..registry import Checker, ProjectChecker, register

#: generator constructors RL201 polices
_RNG_CTORS = frozenset({"default_rng", "Random", "RandomState"})
#: the registry's own constructors (never flagged; counted by RL202)
_DERIVE_FUNCS = frozenset({"derive_seed", "derive_rng"})

_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _attr_leaf(node: ast.expr) -> str:
    """Rightmost name of a call target: ``np.random.default_rng`` ->
    ``default_rng``; bare names return themselves."""
    while isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _seed_argument(call: ast.Call) -> ast.expr | None:
    if call.args:
        return call.args[0]
    for kw in call.keywords:
        if kw.arg in ("seed", "x"):
            return kw.value
    return None


def _is_derive_seed_call(node: ast.expr | None) -> bool:
    return (
        isinstance(node, ast.Call)
        and _attr_leaf(node.func) in _DERIVE_FUNCS
    )


def _in_seeded_scope(ctx: FileContext) -> bool:
    return not ctx.is_test and ctx.in_dir(
        "simulate", "pfs", "online", "schemes", "tenancy", "faults", "workloads"
    )


@register
class SeedDerivationChecker(Checker):
    rule = "RL201"
    name = "seed-derivation"
    description = (
        "RNG constructors in seeded subsystems must take their seed "
        "from repro.determinism.derive_seed (or use derive_rng)"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return _in_seeded_scope(ctx)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _attr_leaf(node.func) not in _RNG_CTORS:
                continue
            if _is_derive_seed_call(_seed_argument(node)):
                continue
            yield self.diagnostic(
                ctx,
                node.lineno,
                node.col_offset,
                "RNG constructed outside the seed-lineage registry; use "
                "`derive_rng(SeedDomain.<X>, *indices, base=...)` (or seed "
                "with `derive_seed(...)`) so streams provably never alias "
                "— see repro.determinism",
            )


class _DeriveSite:
    """One ``derive_seed``/``derive_rng`` call site, for RL202."""

    __slots__ = ("path", "line", "col", "domain", "arity", "literal_domain")

    def __init__(
        self,
        path: str,
        line: int,
        col: int,
        domain: str | None,
        arity: int,
        literal_domain: bool,
    ) -> None:
        self.path = path
        self.line = line
        self.col = col
        self.domain = domain
        self.arity = arity
        self.literal_domain = literal_domain


def _domain_of(call: ast.Call) -> tuple[str | None, bool]:
    """The ``SeedDomain.X`` member name of the first argument.

    Returns ``(name, True)`` for an attribute access on a name ending
    in ``SeedDomain`` and ``(None, False)`` for anything dynamic.
    """
    if not call.args:
        return None, False
    first = call.args[0]
    if isinstance(first, ast.Attribute) and isinstance(first.value, ast.Name):
        if first.value.id == "SeedDomain":
            return first.attr, True
    return None, False


def _index_arity(call: ast.Call) -> int:
    """Number of positional index arguments after the domain."""
    arity = len(call.args) - 1
    if any(isinstance(arg, ast.Starred) for arg in call.args[1:]):
        # *indices forwarding: arity is dynamic; treat as a wildcard
        # that matches every arity of the domain
        return -1
    return arity


@register
class LineageAliasChecker(ProjectChecker):
    rule = "RL202"
    name = "lineage-aliasing"
    description = (
        "SeedDomain tags must be unique and no two call sites may "
        "derive the same (domain, index-arity) lineage"
    )

    def __init__(self) -> None:
        self._sites: list[_DeriveSite] = []
        self._enum_tags: list[tuple[str, str, str, int, int]] = []

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.is_test

    def collect(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and node.name == "SeedDomain":
                self._collect_enum(ctx, node)
            elif isinstance(node, ast.Call):
                if _attr_leaf(node.func) not in _DERIVE_FUNCS:
                    continue
                domain, literal = _domain_of(node)
                self._sites.append(
                    _DeriveSite(
                        ctx.display_path,
                        node.lineno,
                        node.col_offset,
                        domain,
                        _index_arity(node),
                        literal,
                    )
                )

    def _collect_enum(self, ctx: FileContext, node: ast.ClassDef) -> None:
        for stmt in node.body:
            if not isinstance(stmt, ast.Assign):
                continue
            if len(stmt.targets) != 1 or not isinstance(
                stmt.targets[0], ast.Name
            ):
                continue
            if not isinstance(stmt.value, ast.Constant) or not isinstance(
                stmt.value.value, str
            ):
                continue
            self._enum_tags.append(
                (
                    ctx.display_path,
                    stmt.targets[0].id,
                    stmt.value.value,
                    stmt.lineno,
                    stmt.col_offset,
                )
            )

    def finalize(self) -> Iterator[Diagnostic]:
        # (1) tag-string uniqueness across the enum definition
        seen_tags: dict[str, str] = {}
        for path, member, tag, line, col in self._enum_tags:
            if tag in seen_tags:
                yield Diagnostic(
                    path=path,
                    line=line,
                    col=col,
                    rule=self.rule,
                    message=(
                        f"SeedDomain.{member} reuses tag {tag!r} already "
                        f"bound to SeedDomain.{seen_tags[tag]}; every "
                        "domain tag must be unique or their streams alias"
                    ),
                )
            else:
                seen_tags[tag] = member
        # (2) one (domain, index-arity) lineage per call site
        by_lineage: dict[tuple[str, int], _DeriveSite] = {}
        wildcard: dict[str, _DeriveSite] = {}
        for site in sorted(
            self._sites, key=lambda s: (s.path, s.line, s.col)
        ):
            if site.domain is None:
                continue
            if site.arity < 0:
                prior_wild = wildcard.get(site.domain)
                if prior_wild is not None:
                    yield self._alias_diag(site, prior_wild)
                else:
                    wildcard[site.domain] = site
                continue
            prior = by_lineage.get((site.domain, site.arity))
            if prior is not None:
                yield self._alias_diag(site, prior)
                continue
            by_lineage[(site.domain, site.arity)] = site
        for site in by_lineage.values():
            prior_wild = wildcard.get(site.domain)
            if prior_wild is not None:
                yield self._alias_diag(site, prior_wild)

    def _alias_diag(self, site: _DeriveSite, prior: _DeriveSite) -> Diagnostic:
        return Diagnostic(
            path=site.path,
            line=site.line,
            col=site.col,
            rule=self.rule,
            message=(
                f"derivation from SeedDomain.{site.domain} with the same "
                f"index arity as {prior.path}:{prior.line} — two call "
                "sites reaching one (domain, arity) lineage can hand out "
                "the same stream; share one helper or add a new domain"
            ),
        )


@register
class RngTaskBoundaryChecker(Checker):
    rule = "RL203"
    name = "rng-task-boundary"
    description = (
        "RNG objects must not cross a parallel_map task boundary; "
        "derive the stream inside the worker from the picklable spec"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        # applies in tests too: pickling an rng into a pool is wrong
        # everywhere (mirrors RL003's scope)
        return True

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(ctx, node.body)
        yield from self._check_scope(ctx, ctx.tree.body)

    def _walk_scope(self, body: list[ast.stmt]) -> Iterator[ast.AST]:
        """Walk a scope's statements without descending into nested
        function definitions (each scope is checked on its own);
        lambdas stay in scope — they close over the enclosing names."""
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_scope(
        self, ctx: FileContext, body: list[ast.stmt]
    ) -> Iterator[Diagnostic]:
        rng_names = self._rng_bindings(body)
        if not rng_names:
            return
        for node in self._walk_scope(body):
            if not isinstance(node, ast.Call):
                continue
            if _attr_leaf(node.func) != "parallel_map":
                continue
            for name, line, col in self._rng_uses(node, rng_names):
                yield self.diagnostic(
                    ctx,
                    line,
                    col,
                    f"RNG object {name!r} crosses a parallel_map task "
                    "boundary; workers must derive their own stream "
                    "via derive_rng(...) from the picklable task spec",
                )

    def _rng_bindings(self, body: list[ast.stmt]) -> set[str]:
        """Names bound (anywhere in this scope) to an RNG constructor."""
        names: set[str] = set()
        for node in self._walk_scope(body):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            leaf = _attr_leaf(value.func)
            if leaf not in _RNG_CTORS and leaf != "derive_rng":
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    def _rng_uses(
        self, call: ast.Call, rng_names: set[str]
    ) -> list[tuple[str, int, int]]:
        """RNG-bound names referenced anywhere in the call's arguments."""
        uses: list[tuple[str, int, int]] = []
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            for node in ast.walk(arg):
                if isinstance(node, ast.Name) and node.id in rng_names:
                    uses.append((node.id, node.lineno, node.col_offset))
        return uses

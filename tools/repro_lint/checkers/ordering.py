"""RL211–RL213 — iteration and accumulation order hazards.

Bit-identical replay means every value that feeds a digest, a seeded
computation, or a merged artifact must be produced in a *defined*
order.  Three well-known leaks:

* **RL211** — iterating a set (or ``dict.keys()`` of a set-built dict)
  inside a function that also computes digests, derives seeds, or
  assembles merged runs: set iteration order depends on hash
  randomization (``PYTHONHASHSEED``) for strings, so the same inputs
  can hash differently across interpreter launches.  Wrap the
  iteration in ``sorted(...)``.
* **RL212** — ``os.listdir`` / ``glob.glob`` / ``Path.iterdir`` and
  friends without an enclosing ``sorted(...)``: directory enumeration
  order is filesystem-dependent (and differs across machines even for
  the same tree).
* **RL213** — ``sum()`` over ``parallel_map`` results: float addition
  is not associative, so an accumulation over shard results is only
  reproducible because ``parallel_map`` preserves submission order —
  a contract the call site must either rely on explicitly
  (``math.fsum``, order-insensitive) or document.  ``fsum`` is exempt.

All three are per-file passes; they are regression guards — the tree is
clean today because ``Trace.files()`` is insertion-ordered and the only
glob in the loaders is already sorted.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from ..diagnostics import Diagnostic
from ..engine import FileContext
from ..registry import Checker, register

_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: names whose presence marks a function as order-sensitive for RL211
_ORDER_SENSITIVE_MARKERS = frozenset(
    {
        "hashlib",
        "sha256",
        "md5",
        "blake2b",
        "derive_seed",
        "derive_rng",
        "default_rng",
        "digest",
        "hexdigest",
        "MergedRuns",
        "RunsBuilder",
        "ServeReport",
    }
)

#: callables/attributes that enumerate a directory in FS order
_LISTING_FUNCS = frozenset(
    {"listdir", "glob", "iglob", "rglob", "iterdir", "scandir"}
)


def _leaf(node: ast.expr) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _is_set_expr(node: ast.expr) -> bool:
    """Expressions that evaluate to a set (hash-order iteration)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and _leaf(node.func) in {"set", "frozenset"}:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra: at least one operand must itself be a set expr
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _function_markers(fn: _FuncDef) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and node.id in _ORDER_SENSITIVE_MARKERS:
            return True
        if isinstance(node, ast.Attribute) and (
            node.attr in _ORDER_SENSITIVE_MARKERS
        ):
            return True
    return False


def _set_bound_names(fn: _FuncDef) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if _is_set_expr(node.value) and isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


class _SortedSpans:
    """Tracks which nodes sit (directly) under a ``sorted(...)`` call."""

    def __init__(self, root: ast.AST) -> None:
        self._sorted_args: set[int] = set()
        for node in ast.walk(root):
            if isinstance(node, ast.Call) and _leaf(node.func) == "sorted":
                for arg in node.args:
                    self._collect(arg)

    def _collect(self, node: ast.AST) -> None:
        self._sorted_args.add(id(node))
        # `sorted(p for p in path.iterdir())` — the listing call sits
        # one generator deep; unwrap comprehensions too
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            for gen in node.generators:
                self._sorted_args.add(id(gen.iter))

    def covers(self, node: ast.AST) -> bool:
        return id(node) in self._sorted_args


@register
class SetIterationChecker(Checker):
    rule = "RL211"
    name = "set-iteration-order"
    description = (
        "no unsorted set iteration in functions that feed digests, "
        "seed derivation, or merged-run assembly"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.is_test

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _function_markers(fn):
                continue
            yield from self._check_function(ctx, fn)

    def _iter_sources(
        self, fn: _FuncDef
    ) -> Iterator[ast.expr]:
        """Every expression whose iteration order the function observes."""
        for node in ast.walk(fn):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield node.iter
            elif isinstance(node, ast.comprehension):
                yield node.iter

    def _check_function(
        self, ctx: FileContext, fn: _FuncDef
    ) -> Iterator[Diagnostic]:
        spans = _SortedSpans(fn)
        set_names = _set_bound_names(fn)
        for source in self._iter_sources(fn):
            if spans.covers(source):
                continue
            flagged = _is_set_expr(source) or (
                isinstance(source, ast.Name) and source.id in set_names
            )
            if not flagged and isinstance(source, ast.Call):
                # d.keys() where d was built from a set expr is rare;
                # flag explicit .keys() on a set-bound name
                func = source.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "keys"
                    and isinstance(func.value, ast.Name)
                    and func.value.id in set_names
                ):
                    flagged = True
            if flagged:
                yield self.diagnostic(
                    ctx,
                    source.lineno,
                    source.col_offset,
                    "set iteration order feeds an order-sensitive "
                    "computation (digest/seed/merge) in this function; "
                    "hash randomization makes it run-dependent — wrap "
                    "the iterable in sorted(...)",
                )


@register
class DirectoryListingChecker(Checker):
    rule = "RL212"
    name = "directory-listing-order"
    description = (
        "os.listdir/glob/Path.iterdir results must pass through "
        "sorted(...) before use"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.is_test

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        spans = _SortedSpans(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _leaf(node.func) not in _LISTING_FUNCS:
                continue
            if spans.covers(node):
                continue
            yield self.diagnostic(
                ctx,
                node.lineno,
                node.col_offset,
                f"`{_leaf(node.func)}(...)` enumerates in filesystem "
                "order, which differs across machines; wrap the call in "
                "sorted(...) before iterating",
            )


@register
class AccumulationOrderChecker(Checker):
    rule = "RL213"
    name = "accumulation-order"
    description = (
        "float sum() over parallel_map/shard-merge results needs "
        "math.fsum or a documented order guarantee"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.is_test

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_function(ctx, fn)

    def _parallel_names(self, fn: _FuncDef) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            if _leaf(node.value.func) != "parallel_map":
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    def _check_function(
        self, ctx: FileContext, fn: _FuncDef
    ) -> Iterator[Diagnostic]:
        parallel_names = self._parallel_names(fn)
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            if _leaf(node.func) != "sum" or not node.args:
                continue
            if self._feeds_on_parallel(node.args[0], parallel_names):
                yield self.diagnostic(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "sum() over parallel_map results: float addition is "
                    "order-sensitive — use math.fsum, or document that "
                    "the values are integers / the order is guaranteed "
                    "(parallel_map preserves submission order)",
                )

    def _feeds_on_parallel(
        self, arg: ast.expr, parallel_names: set[str]
    ) -> bool:
        for node in ast.walk(arg):
            if isinstance(node, ast.Name) and node.id in parallel_names:
                return True
            if isinstance(node, ast.Call) and _leaf(node.func) == "parallel_map":
                return True
        return False

"""RL005 — no exact ``==``/``!=`` on float expressions outside tests.

Eq. 2 costs, feature centroids, and timestamps are all floats that pass
through enough arithmetic that exact equality is a coin flip.  The
classic failure is the feature-spread normalisation guard: testing
``spread == 0.0`` misses a spread of ``1e-17`` and then divides by it.
Use ``repro.numerics`` (``isclose`` / ``replace_near_zero``) or
``float.is_integer()`` instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..registry import Checker, register


def _is_floatish(node: ast.expr) -> str | None:
    """Why ``node`` is float-valued, or None if it need not be."""
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return f"float literal {node.value!r}"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id == "float":
            return "float(...) result"
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return "true-division result"
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    return None


def _int_roundtrip(left: ast.expr, right: ast.expr) -> bool:
    """``x == int(x)`` — the float-is-integral anti-pattern."""
    call, other = (left, right) if isinstance(left, ast.Call) else (right, left)
    return (
        isinstance(call, ast.Call)
        and isinstance(call.func, ast.Name)
        and call.func.id in {"int", "round"}
        and len(call.args) == 1
        and ast.dump(call.args[0]) == ast.dump(other)
    )


@register
class FloatEqualityChecker(Checker):
    rule = "RL005"
    name = "float-equality"
    description = (
        "no ==/!= on float expressions outside tests; use tolerance "
        "helpers from repro.numerics"
    )

    def applies_to(self, ctx) -> bool:
        parts = ctx.posix_path.split("/")
        return not ctx.is_test and "src" in parts

    def check(self, ctx) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _int_roundtrip(left, right):
                    yield self.diagnostic(
                        ctx,
                        left.lineno,
                        left.col_offset,
                        "`x == int(x)` float-integrality test; use "
                        "`float.is_integer()` instead",
                    )
                    continue
                reason = _is_floatish(left) or _is_floatish(right)
                if reason is not None:
                    yield self.diagnostic(
                        ctx,
                        left.lineno,
                        left.col_offset,
                        f"exact equality against {reason}; use "
                        "repro.numerics.isclose / replace_near_zero",
                    )

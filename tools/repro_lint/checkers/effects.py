"""RL301–RL305 — the effect system: transitive purity and effect contracts.

These rules query the interprocedural call graph
(:mod:`tools.repro_lint.callgraph`): every function in the linted files
gets an inferred effect summary, propagated to fixpoint over resolved
call edges, and the rules judge the *transitive* summary where the
older RL004/RL003/RL203 rules could only inspect one function body.

* **RL301** — Eq.2 purity, transitively: functions in the cost-model /
  determination / placement / gate modules (the RL004 scope plus
  ``core/cost_model.py``) must infer to ``PURE`` modulo
  ``READS_CONFIG``, and must be *proven* — an unresolved call anywhere
  in their call tree is itself a finding, because an unproven gate is
  an uncertifiable gate.

* **RL302** — parallel-task hygiene, transitively: a task entering
  ``parallel_map`` must never reach ``MUTATES_GLOBAL`` or un-derived
  ``RNG`` (those break bit-identical sharded merges and no declaration
  can sanction them).  ``IO``/``READS_ENV`` on a task are allowed only
  when the task function carries an explicit ``@effects`` contract
  naming them (the audit trail for config-gated persistence such as
  DRT-backed builds); an undeclared task must additionally be proven.

* **RL303** — digest discipline, transitively: digest-producing
  functions (``digest``/``digest_*``/``*_digest`` in ``src/``) must not
  reach ``READS_ENV``, ``TIME`` or ``RNG`` — a digest that varies with
  the environment, the clock, or entropy cannot gate CI.

* **RL304** — declaration honesty: for every ``@effects`` declaration,
  an inferred effect missing from the declaration is a contract
  violation, and a declared effect the analyzer can positively rule
  out (the function is fully proven and does not have it) is a stale
  declaration.  Declarations must be literal.

* **RL305** — twin effect parity: a ``@twin_of`` fast path must not
  infer effects its reference lacks, modulo ``READS_CONFIG`` when the
  contract names ``fallback_flags`` (the twin may consult config to
  decide whether to fall back).

Internal-state mutation (``MUTATES_STATE``: caches, counters — the
RL004 "controllers may keep internal state" concession) is stripped
before any rule fires.  Suppressions use the standard
``# repro-lint: disable=RL30x`` comment on the flagged line.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..callgraph import (
    IO,
    MUTATES_GLOBAL,
    MUTATES_STATE,
    READS_CONFIG,
    READS_ENV,
    RNG,
    TIME,
    CallGraph,
    FunctionNode,
    WitnessStep,
    effect_summary,
    graph_for_contexts,
)
from ..diagnostics import Diagnostic
from ..registry import ProjectChecker, register
from .purity import _PURE_MODULE_SUFFIXES

#: RL301 scope: the RL004 module list plus the cost model itself
_EQ2_MODULE_SUFFIXES = _PURE_MODULE_SUFFIXES + ("repro/core/cost_model.py",)

#: effects Eq.2 functions may keep (config is a deterministic ambient
#: input the twin rules force both paths to mirror)
_EQ2_ALLOWED = frozenset({READS_CONFIG})

#: effects a parallel task may never reach, declared or not
_TASK_FORBIDDEN = frozenset({MUTATES_GLOBAL, RNG})

#: effects a digest producer may never reach
_DIGEST_FORBIDDEN = frozenset({READS_ENV, TIME, RNG})


def _chain_text(chain: Sequence[WitnessStep]) -> str:
    """Compact one-line witness rendering for a diagnostic message."""
    if not chain:
        return ""
    hops = " -> ".join(step.spec.split(":", 1)[-1] for step in chain)
    last = chain[-1]
    return f" [{hops}; {last.path}:{last.line}: {last.note}]"


def _is_digest_name(name: str) -> bool:
    return (
        name == "digest"
        or name.startswith("digest_")
        or name.endswith("_digest")
    )


def _reportable(node: FunctionNode) -> bool:
    """Nodes worth flagging directly (nested defs surface via parents)."""
    return ".<locals>." not in node.qualname and "<lambda" not in node.qualname


class _EffectRule(ProjectChecker):
    """Shared context collection for the RL3xx family.

    All five rules hand the same ``FileContext`` objects to
    :func:`graph_for_contexts`, which memoizes on the tree identities —
    the graph is built once per lint run no matter how many effect
    rules are enabled.
    """

    def __init__(self) -> None:
        self._ctxs: list = []

    def collect(self, ctx) -> None:
        self._ctxs.append(ctx)

    def _graph(self) -> CallGraph:
        return graph_for_contexts(self._ctxs)

    def at(self, node: FunctionNode, message: str) -> Diagnostic:
        return Diagnostic(
            path=node.path,
            line=node.line,
            col=node.col,
            rule=self.rule,
            message=message,
        )

    def _inferred(self, graph: CallGraph, spec: str) -> frozenset[str]:
        return frozenset(graph.inferred(spec) - {MUTATES_STATE})


@register
class TransitiveEq2Purity(_EffectRule):
    rule = "RL301"
    name = "transitive-eq2-purity"
    description = (
        "cost-model/determination/placement/gate functions must be "
        "transitively pure (READS_CONFIG tolerated) and fully proven"
    )

    def finalize(self) -> Iterator[Diagnostic]:
        graph = self._graph()
        for spec in sorted(graph.nodes):
            node = graph.nodes[spec]
            if node.is_test or not _reportable(node):
                continue
            if not node.path.endswith(_EQ2_MODULE_SUFFIXES):
                continue
            extra = self._inferred(graph, spec) - _EQ2_ALLOWED
            for effect in sorted(extra):
                chain = graph.witness_chain(spec, effect)
                yield self.at(
                    node,
                    f"`{node.qualname}` is in the Eq.2 purity scope but "
                    f"transitively reaches {effect}{_chain_text(chain)}",
                )
            if graph.is_unproven(spec):
                chain = graph.unproven_chain(spec)
                yield self.at(
                    node,
                    f"`{node.qualname}` is in the Eq.2 purity scope but "
                    f"cannot be certified: its call tree has an "
                    f"unresolved call{_chain_text(chain)}; resolve it or "
                    f"pin a boundary with @effects",
                )


@register
class ParallelTaskEffects(_EffectRule):
    rule = "RL302"
    name = "parallel-task-effects"
    description = (
        "parallel_map tasks must not transitively reach MUTATES_GLOBAL "
        "or RNG; IO/READS_ENV only via a pinned @effects contract"
    )

    def finalize(self) -> Iterator[Diagnostic]:
        graph = self._graph()
        seen: set[tuple[str, str]] = set()
        for site in graph.parallel_sites:
            if site.is_test or site.task is None:
                continue
            node = graph.nodes.get(site.task)
            if node is None:
                continue
            inferred = self._inferred(graph, site.task)
            for effect in sorted(inferred & _TASK_FORBIDDEN):
                key = (site.task, effect)
                if key in seen:
                    continue
                seen.add(key)
                chain = graph.witness_chain(site.task, effect)
                yield self.at(
                    node,
                    f"parallel task `{node.qualname}` (dispatched at "
                    f"{site.path}:{site.line}) transitively reaches "
                    f"{effect}, which breaks bit-identical sharded "
                    f"merges{_chain_text(chain)}",
                )
            declared = node.declared if node.declared is not None else None
            sanctionable = sorted(
                (inferred - _TASK_FORBIDDEN) & {IO, READS_ENV}
            )
            for effect in sanctionable:
                if declared is not None and effect in declared:
                    continue
                key = (site.task, effect)
                if key in seen:
                    continue
                seen.add(key)
                chain = graph.witness_chain(site.task, effect)
                yield self.at(
                    node,
                    f"parallel task `{node.qualname}` transitively "
                    f"reaches {effect} without declaring it; add "
                    f"@effects(...) naming it to sanction the "
                    f"boundary{_chain_text(chain)}",
                )
            if declared is None and graph.is_unproven(site.task):
                key = (site.task, "unproven")
                if key in seen:
                    continue
                seen.add(key)
                chain = graph.unproven_chain(site.task)
                yield self.at(
                    node,
                    f"parallel task `{node.qualname}` cannot be "
                    f"certified: unresolved call in its call "
                    f"tree{_chain_text(chain)}; resolve it or pin the "
                    f"task with @effects",
                )


@register
class DigestEffects(_EffectRule):
    rule = "RL303"
    name = "digest-effects"
    description = (
        "digest producers must not transitively reach READS_ENV, TIME "
        "or RNG"
    )

    def finalize(self) -> Iterator[Diagnostic]:
        graph = self._graph()
        for spec in sorted(graph.nodes):
            node = graph.nodes[spec]
            if node.is_test or not _reportable(node):
                continue
            if not node.path.startswith("src/"):
                continue
            if not _is_digest_name(node.name):
                continue
            bad = self._inferred(graph, spec) & _DIGEST_FORBIDDEN
            for effect in sorted(bad):
                chain = graph.witness_chain(spec, effect)
                yield self.at(
                    node,
                    f"digest producer `{node.qualname}` transitively "
                    f"reaches {effect}; a digest that varies with the "
                    f"environment cannot gate CI{_chain_text(chain)}",
                )
            if graph.is_unproven(spec) and node.declared is None:
                chain = graph.unproven_chain(spec)
                yield self.at(
                    node,
                    f"digest producer `{node.qualname}` cannot be "
                    f"certified: unresolved call in its call "
                    f"tree{_chain_text(chain)}",
                )


@register
class DeclaredEffectsHonesty(_EffectRule):
    rule = "RL304"
    name = "effects-declaration-honesty"
    description = (
        "@effects declarations must cover every inferred effect and "
        "must not keep effects the analyzer can rule out"
    )

    def finalize(self) -> Iterator[Diagnostic]:
        graph = self._graph()
        for spec in sorted(graph.nodes):
            node = graph.nodes[spec]
            if node.declared is None:
                continue
            if not node.declared_literal:
                yield self.at(
                    node,
                    f"@effects on `{node.qualname}` must use literal "
                    f"string effect names",
                )
                continue
            inferred = self._inferred(graph, spec)
            missing = inferred - node.declared
            for effect in sorted(missing):
                chain = graph.witness_chain(spec, effect)
                yield self.at(
                    node,
                    f"`{node.qualname}` declares "
                    f"@effects({effect_summary(node.declared)}) but the "
                    f"analyzer infers {effect}{_chain_text(chain)}; "
                    f"widen the declaration or remove the effect",
                )
            if not graph.is_unproven(spec):
                stale = node.declared - inferred
                for effect in sorted(stale):
                    yield self.at(
                        node,
                        f"`{node.qualname}` declares {effect} but the "
                        f"analyzer proves it never occurs; drop the "
                        f"stale declaration",
                    )


@register
class TwinEffectParity(_EffectRule):
    rule = "RL305"
    name = "twin-effect-parity"
    description = (
        "a @twin_of fast path must not infer effects its reference "
        "lacks (modulo READS_CONFIG under fallback_flags)"
    )

    def finalize(self) -> Iterator[Diagnostic]:
        from .twin_contracts import _Index, _file_info

        infos = [info for ctx in self._ctxs for info in _file_info(ctx)]
        index = _Index(infos)
        graph = self._graph()
        for twin in infos:
            contract = twin.contract
            if (
                contract is None
                or not contract.literal
                or contract.reference is None
                or contract.reference.count(":") != 1
            ):
                continue
            ref = index.resolve(contract.reference)
            if ref is None:
                continue
            twin_node = graph.nodes.get(twin.spec)
            ref_node = graph.nodes.get(ref.spec)
            if twin_node is None or ref_node is None:
                continue
            if graph.is_unproven(twin.spec) or graph.is_unproven(ref.spec):
                continue  # parity is only meaningful between proven sides
            excess = (
                self._inferred(graph, twin.spec)
                - self._inferred(graph, ref.spec)
            )
            if contract.fallback_flags:
                excess -= {READS_CONFIG}
            for effect in sorted(excess):
                chain = graph.witness_chain(twin.spec, effect)
                yield self.at(
                    twin_node,
                    f"twin `{twin_node.qualname}` transitively reaches "
                    f"{effect} but its reference "
                    f"`{ref_node.qualname}` does not; twins must stay "
                    f"effect-equivalent{_chain_text(chain)}",
                )

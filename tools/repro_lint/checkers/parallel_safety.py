"""RL003 — callables handed to ``parallel_map`` must survive pickling.

``repro.core.parallel.parallel_map`` fans work out to worker
*processes*: the callable is pickled by reference (module + qualname)
and re-imported in the worker.  Lambdas, closures, and bound methods
either fail to pickle or — worse — drag their captured state (a
simulator, a PFS server farm) across the process boundary.  The runtime
falls back to serial execution when pickling fails, so the bug is a
silent loss of parallelism rather than a crash; this rule makes it
loud.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..registry import Checker, register

#: names whose capture into a worker is always wrong (simulated state)
_STATEFUL_NAME_RE = (
    "sim",
    "simulator",
    "server",
    "servers",
    "pfs",
    "client",
    "clients",
)


def _module_level_names(tree: ast.Module) -> tuple[set[str], set[str], set[str]]:
    """(module-level function names, imported module aliases, nested defs)."""
    top_funcs: set[str] = set()
    module_aliases: set[str] = set()
    nested: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            top_funcs.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                module_aliases.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                top_funcs.add(alias.asname or alias.name)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(node):
                if inner is not node and isinstance(
                    inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    nested.add(inner.name)
    return top_funcs, module_aliases, nested


def _is_parallel_map(func: ast.expr) -> bool:
    if isinstance(func, ast.Name):
        return func.id == "parallel_map"
    if isinstance(func, ast.Attribute):
        return func.attr == "parallel_map"
    return False


@register
class ParallelSafetyChecker(Checker):
    rule = "RL003"
    name = "parallel-safety"
    description = (
        "parallel_map callables must be module-level functions "
        "(picklable), never lambdas/closures/bound methods"
    )

    def check(self, ctx) -> Iterator[Diagnostic]:
        top_funcs, module_aliases, nested = _module_level_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not _is_parallel_map(node.func):
                continue
            fn = node.args[0] if node.args else None
            if fn is None:
                for kw in node.keywords:
                    if kw.arg == "fn":
                        fn = kw.value
            if fn is None:
                continue
            yield from self._check_callable(ctx, fn, top_funcs, module_aliases, nested)

    def _check_callable(
        self,
        ctx,
        fn: ast.expr,
        top_funcs: set[str],
        module_aliases: set[str],
        nested: set[str],
    ) -> Iterator[Diagnostic]:
        if isinstance(fn, ast.Lambda):
            yield self.diagnostic(
                ctx,
                fn.lineno,
                fn.col_offset,
                "lambda passed to parallel_map cannot be pickled into worker "
                "processes; define a module-level function",
            )
        elif isinstance(fn, ast.Name):
            if fn.id in nested and fn.id not in top_funcs:
                yield self.diagnostic(
                    ctx,
                    fn.lineno,
                    fn.col_offset,
                    f"`{fn.id}` is a nested function (closure); parallel_map "
                    "workers can only import module-level callables",
                )
        elif isinstance(fn, ast.Attribute):
            root = fn.value
            if not (isinstance(root, ast.Name) and root.id in module_aliases):
                yield self.diagnostic(
                    ctx,
                    fn.lineno,
                    fn.col_offset,
                    "bound method passed to parallel_map pickles its whole "
                    "instance into every worker; use a module-level function "
                    "taking the data explicitly",
                )
        elif isinstance(fn, ast.Call):
            yield from self._check_partial(ctx, fn, top_funcs, module_aliases, nested)

    def _check_partial(
        self,
        ctx,
        call: ast.Call,
        top_funcs: set[str],
        module_aliases: set[str],
        nested: set[str],
    ) -> Iterator[Diagnostic]:
        callee = call.func
        is_partial = (isinstance(callee, ast.Name) and callee.id == "partial") or (
            isinstance(callee, ast.Attribute) and callee.attr == "partial"
        )
        if not is_partial:
            return
        if call.args:
            yield from self._check_callable(
                ctx, call.args[0], top_funcs, module_aliases, nested
            )
        bound = list(call.args[1:]) + [kw.value for kw in call.keywords]
        for value in bound:
            if isinstance(value, ast.Name) and value.id.lower() in _STATEFUL_NAME_RE:
                yield self.diagnostic(
                    ctx,
                    value.lineno,
                    value.col_offset,
                    f"partial binds `{value.id}` into the worker payload; "
                    "simulator/server state must not cross the process "
                    "boundary — pass plain data instead",
                )

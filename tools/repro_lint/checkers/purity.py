"""RL004 — Eq. 2 cost evaluation must be pure.

The gate's replan decision and the planner's stripe search both rank
candidates by re-evaluating the paper's Eq. 2 cost model many times
over the same inputs.  That only works if evaluation has no side
effects: no writes to argument objects, no module-global state, no I/O,
and no function-level imports (a hidden ``sys.modules`` mutation plus
first-call filesystem I/O that makes the first evaluation different
from the rest).  This rule patrols the modules on the Eq. 2 evaluation
path.

``self``/``cls`` are exempt from the argument-write rule: stateful
*controllers* (e.g. the cost-benefit gate) may keep internal state, but
must never write into the params/plan/trace objects they are handed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..registry import Checker, register

#: path suffixes of modules on the Eq. 2 evaluation path
_PURE_MODULE_SUFFIXES = (
    "repro/core/params.py",
    "repro/core/features.py",
    "repro/core/determinator.py",
    "repro/core/placer.py",
    "repro/online/gate.py",
)

_IO_BUILTINS = {"print", "open", "input"}
_IO_MODULE_ROOTS = {"subprocess", "shutil", "socket", "requests"}
_IO_METHODS = {"write", "writelines", "flush"}

#: receiver methods that mutate builtin containers in place
_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "clear",
    "sort",
    "reverse",
    "update",
    "add",
    "discard",
    "setdefault",
    "popitem",
}


def _root_name(node: ast.expr) -> str | None:
    """Leftmost name of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = fn.args
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


@register
class PurityChecker(Checker):
    rule = "RL004"
    name = "cost-model-purity"
    description = (
        "Eq. 2 evaluation path: no writes to arguments, no globals, "
        "no I/O, no function-level imports"
    )

    def applies_to(self, ctx) -> bool:
        path = ctx.posix_path
        if path.endswith(_PURE_MODULE_SUFFIXES):
            return True
        parts = path.split("/")
        return (
            len(parts) >= 2
            and parts[-2] == "core"
            and parts[-1].startswith("cost")
            and path.endswith(".py")
        )

    def check(self, ctx) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Diagnostic]:
        params = _param_names(fn) - {"self", "cls"}
        for node in self._own_nodes(fn):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                yield self.diagnostic(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"`{type(node).__name__.lower()}` statement in "
                    f"`{fn.name}`; Eq. 2 evaluation must not touch "
                    "module/enclosing state",
                )
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                yield self.diagnostic(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"function-level import in `{fn.name}` mutates "
                    "sys.modules and does I/O on first call; hoist it to "
                    "module scope",
                )
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                yield from self._check_store(ctx, fn, node, params)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, fn, node, params)

    @staticmethod
    def _own_nodes(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        """Walk ``fn`` without descending into nested function defs."""
        stack = list(fn.body)
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stack.extend(ast.iter_child_nodes(node))

    def _check_store(
        self,
        ctx,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        node: ast.Assign | ast.AnnAssign | ast.AugAssign,
        params: set[str],
    ) -> Iterator[Diagnostic]:
        targets: list[ast.expr]
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        else:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Tuple):
                targets.extend(target.elts)
                continue
            if not isinstance(target, (ast.Attribute, ast.Subscript)):
                continue
            root = _root_name(target)
            if root in params:
                kind = "attribute" if isinstance(target, ast.Attribute) else "item"
                yield self.diagnostic(
                    ctx,
                    target.lineno,
                    target.col_offset,
                    f"`{fn.name}` writes an {kind} of its argument "
                    f"`{root}`; Eq. 2 evaluation must not mutate its inputs",
                )

    def _check_call(
        self,
        ctx,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        node: ast.Call,
        params: set[str],
    ) -> Iterator[Diagnostic]:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _IO_BUILTINS:
            yield self.diagnostic(
                ctx,
                node.lineno,
                node.col_offset,
                f"I/O call `{func.id}()` in `{fn.name}`; Eq. 2 evaluation "
                "must be side-effect free",
            )
            return
        if not isinstance(func, ast.Attribute):
            return
        root = _root_name(func)
        if root in _IO_MODULE_ROOTS:
            yield self.diagnostic(
                ctx,
                node.lineno,
                node.col_offset,
                f"I/O call `{root}.{func.attr}()` in `{fn.name}`; Eq. 2 "
                "evaluation must be side-effect free",
            )
            return
        if func.attr in _IO_METHODS:
            yield self.diagnostic(
                ctx,
                node.lineno,
                node.col_offset,
                f"stream `.{func.attr}()` call in `{fn.name}`; Eq. 2 "
                "evaluation must be side-effect free",
            )
            return
        if (
            func.attr in _MUTATOR_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id in params
        ):
            yield self.diagnostic(
                ctx,
                node.lineno,
                node.col_offset,
                f"`{fn.name}` calls mutating `.{func.attr}()` on its "
                f"argument `{func.value.id}`; copy it first",
            )
